(** CntrlFairBipart (paper Sec. V): the perfectly fair MIS subroutine for
    low-diameter bipartite components.

    Given an estimate [d_hat] of the component diameter, each component
    runs a [d_hat]-round flood-max leader election; the leader(s) flip a
    bit and start a breadth-first search carrying (depth, bit); a node at
    level [i] joins the MIS iff [i + bit] is even. A node that is alone
    (degree 0 in the view) always joins.

    When [d_hat >= D(component)] this produces a correct MIS of the
    component where every non-singleton node joins with probability exactly
    1/2 (Lemma 7). When [d_hat] is an underestimate, multiple local leaders
    may arise; the result is then not necessarily independent or maximal —
    exactly as in the paper, where later stages repair it. *)

type result = {
  joined : bool array;
  leader : int array;  (** Adopted leader id per node; [-1] if unreached. *)
  level : int array;  (** Depth from the adopted leader; [-1] if unreached. *)
  rounds : int;  (** [2 * d_hat] communication rounds. *)
}

val run : Mis_graph.View.t -> d_hat:int -> bit_of:(int -> bool) -> result
(** Fast engine. Node ids are their indices. [bit_of u] is the bit node
    [u] would flip were it elected leader; pass a {!Rand_plan} closure.
    [d_hat] must be at least 1.
    Exactly reproduces the round-by-round distributed semantics: the
    common case (single leader covering the component within [d_hat])
    is computed directly, any other component falls back to literal
    synchronous relaxation. *)

type message =
  | Max_id of int
  | Bfs of { lead : int; depth : int; bit : bool }

type state

val program :
  d_hat:int -> bit_of:(int -> bool) -> (state, message) Mis_sim.Program.t

val run_distributed :
  Mis_graph.View.t ->
  plan:Rand_plan.t ->
  stage:int ->
  d_hat:int ->
  Mis_sim.Runtime.outcome
(** Runs {!program} on the simulator with bits drawn from
    [Rand_plan.node_bit plan ~stage]. *)
