(** The randomness plan: every coin any algorithm flips is addressed by a
    (seed, stage, entity, ...) key and derived through {!Mis_util.Splitmix}.

    This gives three properties the whole repository relies on:
    - runs are reproducible from a single integer seed;
    - the fast array engine and the distributed simulator engine of the
      same algorithm flip {e identical} coins, so their outputs can be
      compared for exact equality in tests;
    - stages of a composite algorithm (e.g. FairTree's four stages) use
      independent randomness, as the paper's analysis assumes. *)

type t

val make : int -> t
val seed : t -> int

(** Stage tags. Each (algorithm, stage) pair gets a distinct namespace. *)
module Stage : sig
  val fair_rooted_tag : int
  val fair_rooted_virtual : int
  val fair_tree_cut : int
  val fair_tree_s1 : int
  val fair_tree_s2 : int
  val fair_tree_s3 : int
  val fair_tree_luby : int
  val fair_bipart_radius : int
  val fair_bipart_bit : int
  val fair_bipart_luby : int
  val color_mis_radius : int
  val color_mis_choice : int
  val color_mis_luby : int
  val coloring_greedy : int
  val coloring_layered : int
  val luby_main : int
  val centralized : int
end

val node_bit : t -> stage:int -> node:int -> bool
(** One fair coin per (stage, node). *)

val edge_bit : t -> stage:int -> u:int -> v:int -> bool
(** One fair coin per (stage, edge); symmetric in [u]/[v] — this is the
    paper's "cooperate with each neighbor" shared edge coin. *)

val node_value : t -> stage:int -> round:int -> node:int -> int
(** A fresh uniform 62-bit value per (stage, round, node): Luby's
    per-round random priorities. *)

val node_int : t -> stage:int -> node:int -> bound:int -> int
(** Uniform in [\[0, bound)] per (stage, node). *)

val node_radius : t -> stage:int -> node:int -> p:float -> gamma:int -> int
(** The Linial–Saks truncated-geometric broadcast radius per node. *)

val node_stream : t -> stage:int -> node:int -> Mis_util.Splitmix.t
(** A whole private stream, for components that draw an unbounded number
    of coins. *)
