type t =
  | Max_id of int
  | Bfs of { lead : int; depth : int; bit : bool }
  | Member of bool
  | Color of int
  | Value of int
  | In_mis
  | Withdraw
