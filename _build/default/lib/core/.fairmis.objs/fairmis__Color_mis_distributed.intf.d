lib/core/color_mis_distributed.mli: Block_program Mis_graph Mis_sim Rand_plan
