lib/core/luby.ml: Array List Mis_graph Mis_sim Rand_plan
