lib/core/distributed_coloring.mli: Mis_graph Rand_plan
