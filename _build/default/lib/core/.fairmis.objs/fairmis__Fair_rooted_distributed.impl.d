lib/core/fair_rooted_distributed.ml: Array Cole_vishkin List Messages Mis_graph Mis_sim Rand_plan
