lib/core/construct_block.mli: Mis_graph
