lib/core/fair_tree_distributed.mli: Messages Mis_graph Mis_sim Rand_plan
