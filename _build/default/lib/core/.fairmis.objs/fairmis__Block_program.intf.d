lib/core/block_program.mli: Mis_sim
