lib/core/color_mis_distributed.ml: Array Block_program Color_mis Mis_graph Mis_sim Rand_plan
