lib/core/cntrl_fair_bipart.mli: Mis_graph Mis_sim Rand_plan
