lib/core/luby.mli: Mis_graph Mis_sim Rand_plan
