lib/core/block_program.ml: Array List Mis_sim
