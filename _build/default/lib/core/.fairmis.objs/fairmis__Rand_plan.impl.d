lib/core/rand_plan.ml: Int64 Mis_util
