lib/core/fair_rooted.ml: Array Cole_vishkin Mis_graph Rand_plan
