lib/core/centralized.ml: Array Mis_graph Mis_util
