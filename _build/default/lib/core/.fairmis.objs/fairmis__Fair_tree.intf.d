lib/core/fair_tree.mli: Mis_graph Rand_plan
