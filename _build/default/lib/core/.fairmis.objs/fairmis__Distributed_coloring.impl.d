lib/core/distributed_coloring.ml: Array Hashtbl List Mis_graph Mis_util Rand_plan
