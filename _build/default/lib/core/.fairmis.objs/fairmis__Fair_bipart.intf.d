lib/core/fair_bipart.mli: Mis_graph Rand_plan
