lib/core/fair_rooted.mli: Mis_graph Rand_plan
