lib/core/cntrl_fair_bipart.ml: Array Hashtbl List Mis_graph Mis_sim Mis_util Rand_plan
