lib/core/cole_vishkin.ml: Array List Mis_graph
