lib/core/fair_bipart_distributed.ml: Block_program Fair_bipart Mis_graph Mis_sim Rand_plan
