lib/core/fair_bipart_distributed.mli: Block_program Mis_graph Mis_sim Rand_plan
