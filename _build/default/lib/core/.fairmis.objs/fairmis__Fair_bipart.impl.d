lib/core/fair_bipart.ml: Array Construct_block Luby Mis Mis_graph Rand_plan
