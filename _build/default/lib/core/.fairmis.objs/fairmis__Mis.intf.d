lib/core/mis.mli: Mis_graph
