lib/core/color_mis.mli: Mis_graph Rand_plan
