lib/core/messages.ml:
