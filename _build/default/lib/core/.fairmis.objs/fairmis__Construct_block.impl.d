lib/core/construct_block.ml: Array Mis_graph Mis_util
