lib/core/color_mis.ml: Array Construct_block Distributed_coloring Hashtbl List Luby Mis Mis_graph Rand_plan
