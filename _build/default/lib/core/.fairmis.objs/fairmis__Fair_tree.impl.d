lib/core/fair_tree.ml: Array Cntrl_fair_bipart Luby Mis Mis_graph Rand_plan
