lib/core/luby_degree.ml: Array List Mis_graph Mis_sim Rand_plan
