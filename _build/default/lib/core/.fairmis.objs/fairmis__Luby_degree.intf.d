lib/core/luby_degree.mli: Mis_graph Mis_sim Rand_plan
