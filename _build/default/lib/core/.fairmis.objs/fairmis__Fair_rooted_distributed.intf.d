lib/core/fair_rooted_distributed.mli: Messages Mis_graph Mis_sim Rand_plan
