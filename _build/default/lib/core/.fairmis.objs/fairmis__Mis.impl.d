lib/core/mis.ml: Array Mis_graph
