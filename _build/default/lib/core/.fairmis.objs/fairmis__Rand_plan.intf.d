lib/core/rand_plan.mli: Mis_util
