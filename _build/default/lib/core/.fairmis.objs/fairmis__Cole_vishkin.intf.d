lib/core/cole_vishkin.mli: Mis_graph
