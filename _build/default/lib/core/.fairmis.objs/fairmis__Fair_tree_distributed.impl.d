lib/core/fair_tree_distributed.ml: Array Fair_tree List Messages Mis_graph Mis_sim Rand_plan
