lib/core/messages.mli:
