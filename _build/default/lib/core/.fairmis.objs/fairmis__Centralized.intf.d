lib/core/centralized.mli: Mis_graph Mis_util
