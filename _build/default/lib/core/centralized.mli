(** Centralized reference algorithms.

    [greedy_random_permutation] is the classic sequential MIS under a
    uniformly random node ordering — a natural "as fair as greedy gets"
    baseline (its output distribution equals one full run of the
    permutation-based Luby variant).

    [fair_bipartite] is the centralized algorithm A′ of paper Sec. V: on a
    bipartite graph, independently per connected component, pick one side
    of the bipartition with a fair coin — a perfectly fair MIS
    (every node of a non-singleton component joins with probability
    exactly 1/2). *)

val greedy_random_permutation :
  Mis_graph.View.t -> Mis_util.Splitmix.t -> bool array

val greedy_in_order : Mis_graph.View.t -> order:int array -> bool array
(** Deterministic greedy along the given node order (the permutation
    baseline's core, exposed for tests). *)

val fair_bipartite : Mis_graph.View.t -> Mis_util.Splitmix.t -> bool array option
(** [None] when the active subgraph is not bipartite. *)
