(** Construct_Block — the Linial–Saks low-diameter decomposition routine
    (paper Sec. VI-A), augmented as in the paper to piggyback a payload on
    the leader broadcast.

    Every node draws a radius [r_v] from the truncated geometric
    distribution π(p, γ) and floods its id (plus payload) to distance
    [r_v]. A node's leader is the largest id it heard; it joins the
    leader's {e block} iff its distance to the leader is strictly less
    than the leader's radius, and is a {e boundary node} otherwise.
    Lemma 12: a node joins some block with probability >= p(1-p^γ)^n, and
    all connected non-boundary nodes share one leader.

    The payload is a small integer shipped with the flood. With
    [flip_per_hop = true] it is complemented at every hop — this is how
    FairBipart transports the leader's random bit so that a node at odd
    distance reads the negation (paper Fig. 3). ColorMIS ships a color
    unchanged instead. *)

type config = {
  gamma : int;  (** Maximum radius (Θ(log n)). *)
  radius_of : int -> int;  (** Sampled radius per node, in [0 .. gamma]. *)
  payload_of : int -> int;  (** Payload per node (bit or color). *)
  flip_per_hop : bool;  (** Complement a {0,1} payload at each hop. *)
}

type result = {
  leader : int array;
      (** Largest id heard by each active node ([-1] for inactive nodes;
          active nodes always hear at least themselves). *)
  in_block : bool array;
      (** Joined the leader's block (non-boundary). *)
  payload : int array;
      (** Payload as observed at this node for its leader (after any
          per-hop flips along a shortest path); [-1] when inactive. *)
  rounds : int;  (** γ·(γ+1): γ superrounds of γ+1-entry leader tables. *)
}

val run : Mis_graph.View.t -> config -> result
(** Fast engine: one bounded BFS per source (expected ball size is O(1)
    for p = 1/2). Outcome-identical to {!run_tables}. *)

val run_tables : Mis_graph.View.t -> config -> result
(** Faithful simulation of the bounded-message variant the paper adopts:
    γ superrounds in which every node ships its whole leader table
    [L[0..γ], B[0..γ]] to its neighbors. O(n·γ²) work; used to validate
    {!run}. *)
