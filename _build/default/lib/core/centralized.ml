module View = Mis_graph.View
module Traverse = Mis_graph.Traverse
module Splitmix = Mis_util.Splitmix

let greedy_in_order view ~order =
  let n = View.n view in
  let in_mis = Array.make n false in
  let covered = Array.make n false in
  Array.iter
    (fun u ->
      if View.node_active view u && not covered.(u) then begin
        in_mis.(u) <- true;
        covered.(u) <- true;
        View.iter_adj view u (fun v -> covered.(v) <- true)
      end)
    order;
  in_mis

let greedy_random_permutation view rng =
  let n = View.n view in
  let order = Mis_util.Ids.random_permutation rng ~n in
  greedy_in_order view ~order

let fair_bipartite view rng =
  match Traverse.bipartition view with
  | None -> None
  | Some side ->
    let label, comp_count = Traverse.components view in
    let pick = Array.init comp_count (fun _ -> if Splitmix.bool rng then 1 else 0) in
    let n = View.n view in
    let in_mis = Array.make n false in
    View.iter_active view (fun u ->
        if View.degree view u = 0 then in_mis.(u) <- true
        else in_mis.(u) <- side.(u) = pick.(label.(u)));
    Some in_mis
