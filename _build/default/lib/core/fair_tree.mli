(** FairTree (paper Sec. V, Fig. 2): the fair MIS algorithm for unrooted
    trees. Four stages:

    + {b Cut}: every edge is cut with probability 1/2 (a shared edge coin);
      CntrlFairBipart with D̂ = γ builds a fair MIS in each resulting
      component.
    + {b Resolve}: CntrlFairBipart runs again on the subgraph induced by
      the current set I, dropping one side of each cross-component
      conflict.
    + {b Maximalize}: CntrlFairBipart runs on the still-uncovered nodes;
      joiners are added.
    + {b Fix}: any residual independence violations are removed and Luby's
      algorithm covers whatever is left — a fallback that triggers only
      when some component's diameter exceeded γ (probability < 1/n for the
      default γ).

    On a tree this guarantees P(join) >= (1-ε)/4 with ε < 1/n
    (Theorem 8), i.e. an inequality factor approaching 4. *)

type trace = {
  cut : bool array;  (** Per-edge coin of stage 1 (meaningful for usable edges). *)
  i1 : bool array;  (** I after stage 1. *)
  i2 : bool array;  (** I after stage 2. *)
  i3 : bool array;  (** I after stage 3. *)
  fallback_nodes : int;  (** How many nodes ran the Luby fallback. *)
  rounds : int;  (** Round cost of the run (stages are fixed-length). *)
}

val gamma_default : n:int -> int
(** γ = 4·⌈lg n⌉ + 2: large enough that the union-bound argument of
    Lemma 11 gives ε < 1/n. *)

val run : ?gamma:int -> Mis_graph.View.t -> Rand_plan.t -> bool array
(** Fast engine. The view may be any graph — correctness (a valid MIS) is
    unconditional; the fairness guarantee holds when the active subgraph is
    a forest. *)

val run_traced :
  ?gamma:int -> Mis_graph.View.t -> Rand_plan.t -> bool array * trace
