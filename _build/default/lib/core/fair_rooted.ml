module Rooted = Mis_graph.Rooted
module Stage = Rand_plan.Stage

type trace = {
  stage1 : bool array;
  rounds : int;
}

(* Core of the algorithm with the coin flips abstracted out: [tag v] is
   node v's bit, [vtag r] the virtual-parent bit a root draws for itself. *)
let run_with_tags (t : Rooted.t) ~ids ~tag ~vtag =
  let n = t.Rooted.n in
  (* Stage 1: join iff own tag is 0 and parent's tag is 1. *)
  let parent_tag v =
    match t.Rooted.parent.(v) with -1 -> vtag v | p -> tag p
  in
  let stage1 = Array.init n (fun v -> (not (tag v)) && parent_tag v) in
  (* Stage 2: covered nodes terminate; the rest run Cole–Vishkin. *)
  let covered = Array.copy stage1 in
  for v = 0 to n - 1 do
    if stage1.(v) then begin
      let p = t.Rooted.parent.(v) in
      if p >= 0 then covered.(p) <- true
    end
    else begin
      let p = t.Rooted.parent.(v) in
      if p >= 0 && stage1.(p) then covered.(v) <- true
    end
  done;
  let keep = Array.map not covered in
  let residual = Rooted.restrict t ~keep in
  let id_bound = 1 + Array.fold_left max 0 ids in
  let schedule = Cole_vishkin.iterations ~id_bound in
  let rest, cv_rounds = Cole_vishkin.mis residual ~keep ~schedule ~ids in
  let final = Array.init n (fun v -> stage1.(v) || (keep.(v) && rest.(v))) in
  (final, { stage1; rounds = 2 + cv_rounds })

let run_traced ?ids (t : Rooted.t) plan =
  let n = t.Rooted.n in
  let ids = match ids with Some a -> a | None -> Array.init n (fun i -> i) in
  run_with_tags t ~ids
    ~tag:(fun v -> Rand_plan.node_bit plan ~stage:Stage.fair_rooted_tag ~node:v)
    ~vtag:(fun v ->
      Rand_plan.node_bit plan ~stage:Stage.fair_rooted_virtual ~node:v)

let run ?ids t plan = fst (run_traced ?ids t plan)

let exact_join_probabilities ?ids (t : Rooted.t) =
  let n = t.Rooted.n in
  let ids = match ids with Some a -> a | None -> Array.init n (fun i -> i) in
  let roots = Array.of_list (Rooted.roots t) in
  let r = Array.length roots in
  let coins = n + r in
  if coins > 24 then
    invalid_arg "Fair_rooted.exact_join_probabilities: too many coins (n + roots > 24)";
  (* Coin i < n is node i's tag; coin n + j is root j's virtual tag. *)
  let root_slot = Array.make n (-1) in
  Array.iteri (fun j root -> root_slot.(root) <- j) roots;
  let totals = Array.make n 0 in
  let outcomes = 1 lsl coins in
  for word = 0 to outcomes - 1 do
    let tag v = (word lsr v) land 1 = 1 in
    let vtag v = (word lsr (n + root_slot.(v))) land 1 = 1 in
    let mis, _ = run_with_tags t ~ids ~tag ~vtag in
    Array.iteri (fun v b -> if b then totals.(v) <- totals.(v) + 1) mis
  done;
  Array.map (fun c -> float_of_int c /. float_of_int outcomes) totals
