(** FairRooted (paper Sec. IV): the fair MIS algorithm for rooted trees
    and forests.

    Stage 1: every node tags itself with a uniform bit; the root also tags
    a virtual parent. A node with tag 0 whose parent has tag 1 joins I —
    probability exactly 1/4 per node. Stage 2: covered nodes terminate;
    the uncovered remainder (a rooted forest) runs the Cole–Vishkin
    O(log* n) MIS. Theorem 3: correct MIS, inequality factor <= 4. *)

type trace = {
  stage1 : bool array;  (** I after stage 1. *)
  rounds : int;  (** 2 + Cole–Vishkin rounds. *)
}

val run : ?ids:int array -> Mis_graph.Rooted.t -> Rand_plan.t -> bool array
(** [ids] seeds the deterministic stage-2 coloring (default: node index). *)

val run_traced :
  ?ids:int array -> Mis_graph.Rooted.t -> Rand_plan.t -> bool array * trace

val run_with_tags :
  Mis_graph.Rooted.t ->
  ids:int array ->
  tag:(int -> bool) ->
  vtag:(int -> bool) ->
  bool array * trace
(** The algorithm with its coins abstracted out: [tag v] is node [v]'s
    stage-1 bit, [vtag r] the virtual-parent bit drawn by root [r]. *)

val exact_join_probabilities : ?ids:int array -> Mis_graph.Rooted.t -> float array
(** Exact per-node join probability by exhausting all [2^(n + #roots)]
    coin outcomes (the whole randomness of FairRooted — stage 2 is
    deterministic given ids). Noise-free validation of Theorem 3:
    every entry lies in [\[1/4, 1\]].
    @raise Invalid_argument when [n + #roots > 24]. *)
