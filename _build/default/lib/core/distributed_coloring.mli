(** Distributed graph colorings — the substrate ColorMIS combines with
    (paper Sec. VII cites Barenboim–Elkin's arboricity-based coloring for
    planar / low-arboricity graphs).

    Two algorithms:
    - a randomized greedy (deg+1)-coloring, O(log n) rounds w.h.p., usable
      on any graph;
    - an H-partition (arboricity peeling) coloring: peel nodes of degree
      <= bound into layers, then color layers top-down with palette
      [0 .. bound], giving at most [bound+1] colors — for planar graphs
      (arboricity <= 3) a constant palette. *)

type outcome = {
  colors : int array;
      (** Color per active node; [-1] for inactive nodes or (with
          vanishing probability) nodes that exceeded the round budget —
          the paper's footnote 3 lets such nodes proceed uncolored. *)
  palette : int;  (** Exclusive upper bound on assigned colors. *)
  rounds : int;
}

val randomized_greedy :
  ?stage:int -> ?max_rounds:int -> Mis_graph.View.t -> Rand_plan.t -> outcome
(** Each uncolored node repeatedly proposes a uniform color from
    [{0 .. deg(v)}] minus its colored neighbors' colors, keeping it when no
    uncolored neighbor proposed the same color. [palette] = Δ_view + 1. *)

val h_partition :
  Mis_graph.View.t -> degree_bound:int -> (int array * int) option
(** [(layer, layer_count)]: repeatedly peel all active nodes with residual
    degree <= bound. [None] if peeling gets stuck (the graph's degeneracy
    exceeds the bound), in which case the caller should fall back to
    {!randomized_greedy}. *)

val h_partition_partial :
  Mis_graph.View.t -> degree_bound:int -> int array * int * bool array
(** Like {!h_partition} but total: peel as far as possible and return the
    stuck high-degree core as a mask ([layer = -1] for core nodes). The
    core is empty exactly when {!h_partition} succeeds. *)

val hybrid :
  ?stage:int ->
  ?max_rounds_per_layer:int ->
  Mis_graph.View.t ->
  Rand_plan.t ->
  degree_bound:int ->
  outcome
(** Color the stuck core with the (deg+1) greedy palette, then the peeled
    layers top-down with palette [0 .. degree_bound]. Low-arboricity
    regions therefore use at most [degree_bound + 1] colors even when the
    graph contains dense cores — the coloring behind the paper's Sec. VII
    remark about per-region fairness. *)

val layered :
  ?stage:int ->
  ?max_rounds_per_layer:int ->
  Mis_graph.View.t ->
  Rand_plan.t ->
  degree_bound:int ->
  outcome option
(** H-partition coloring with palette [0 .. degree_bound]. [None] when the
    degree bound is too small for the graph. *)

val planar : ?stage:int -> Mis_graph.View.t -> Rand_plan.t -> outcome
(** [layered] with bound 7 (= ⌊(2+ε)·3⌋ for planar arboricity 3, ε ≈ 1/3),
    i.e. at most 8 colors; falls back to [randomized_greedy] if peeling
    stalls (which cannot happen on planar inputs). *)
