(** FairBipart (paper Sec. VI, Fig. 3): the fair MIS algorithm for
    bipartite graphs, O(log^2 n) rounds, inequality factor <= 8
    (Theorem 13), approaching 4 as γ grows.

    Stage 1 runs {!Construct_block} with a random bit piggybacked on the
    leader flood (complemented per hop); a node joins I iff it lands in a
    block and its observed bit is 1. Because all paths between two nodes
    of a bipartite graph have the same length parity, two neighbors in a
    block never read the same bit, so I is independent (Lemma 14).
    Stage 2 covers the rest with Luby.

    On non-bipartite inputs the implementation stays safe: any
    independence violations (impossible in the bipartite case) are removed
    before the Luby stage, so the output is always a valid MIS. *)

type trace = {
  in_block : bool array;
  i1 : bool array;  (** I at the end of stage 1. *)
  violations_removed : int;  (** 0 whenever the active subgraph is bipartite. *)
  fallback_nodes : int;  (** Nodes covered by the Luby stage. *)
  rounds : int;
}

val gamma_default : n:int -> int
(** 2·⌈lg n⌉, the paper's choice (block-join probability > 1/4). *)

val run :
  ?p:float -> ?gamma:int -> Mis_graph.View.t -> Rand_plan.t -> bool array

val run_traced :
  ?p:float ->
  ?gamma:int ->
  Mis_graph.View.t ->
  Rand_plan.t ->
  bool array * trace
