module Rooted = Mis_graph.Rooted

let lowest_differing_bit a b =
  let x = a lxor b in
  assert (x <> 0);
  let rec loop i = if (x lsr i) land 1 = 1 then i else loop (i + 1) in
  loop 0

let reduce_step ~own ~parent =
  let i = lowest_differing_bit own parent in
  (2 * i) + ((own lsr i) land 1)

(* The virtual parent color a root compares against: any value that differs
   from its own color. *)
let virtual_parent_color c = if c <> 0 then 0 else 1

let shift_root_color old = if old <> 0 then 0 else 1

let recolor ~own_old ~parent_new =
  let forbidden c = c = parent_new || c = own_old in
  if not (forbidden 0) then 0 else if not (forbidden 1) then 1 else 2

let ceil_log2 n =
  let rec loop k acc = if acc >= n then k else loop (k + 1) (2 * acc) in
  loop 0 1

let iterations ~id_bound =
  if id_bound < 1 then invalid_arg "Cole_vishkin.iterations";
  (* One reduction maps colors < b to colors < 2*ceil(log2 b); iterate the
     bound down to 6 (the fixed point of the map). *)
  let rec loop b t =
    if b <= 6 then t else loop (2 * ceil_log2 b) (t + 1)
  in
  loop id_bound 0

let default_keep n = Array.make n true

let three_color ?keep ?schedule ~ids (t : Rooted.t) =
  let n = t.Rooted.n in
  let keep = match keep with Some k -> k | None -> default_keep n in
  if Array.length keep <> n then invalid_arg "Cole_vishkin: keep length";
  if Array.length ids <> n then invalid_arg "Cole_vishkin: ids length";
  let color = Array.make n (-1) in
  for v = 0 to n - 1 do
    if keep.(v) then begin
      if ids.(v) < 0 then invalid_arg "Cole_vishkin: negative id";
      color.(v) <- ids.(v)
    end
  done;
  let parent_kept v =
    let p = t.Rooted.parent.(v) in
    if p >= 0 && keep.(p) then p else -1
  in
  let max_color () =
    let best = ref 0 in
    for v = 0 to n - 1 do
      if keep.(v) && color.(v) > !best then best := color.(v)
    done;
    !best
  in
  let rounds = ref 0 in
  let iterate () =
    incr rounds;
    let next = Array.copy color in
    for v = 0 to n - 1 do
      if keep.(v) then begin
        let pc =
          match parent_kept v with
          | -1 -> virtual_parent_color color.(v)
          | p -> color.(p)
        in
        next.(v) <- reduce_step ~own:color.(v) ~parent:pc
      end
    done;
    Array.blit next 0 color 0 n
  in
  (* Bit-reduction: either the agreed fixed schedule, or until all colors
     are below 6. *)
  (match schedule with
  | Some count ->
    if count < 0 then invalid_arg "Cole_vishkin: schedule";
    for _ = 1 to count do
      iterate ()
    done
  | None ->
    while max_color () >= 6 do
      if !rounds > 128 then failwith "Cole_vishkin: reduction diverged";
      iterate ()
    done);
  if max_color () >= 6 then failwith "Cole_vishkin: schedule too short";
  (* Eliminate colors 5, 4, 3 with a shift-down before each removal. *)
  List.iter
    (fun target ->
      rounds := !rounds + 2;
      let old = Array.copy color in
      for v = 0 to n - 1 do
        if keep.(v) then
          color.(v) <-
            (match parent_kept v with
            | -1 -> shift_root_color old.(v)
            | p -> old.(p))
      done;
      for v = 0 to n - 1 do
        if keep.(v) && color.(v) = target then begin
          let parent_new =
            match parent_kept v with -1 -> -1 | p -> color.(p)
          in
          color.(v) <- recolor ~own_old:old.(v) ~parent_new
        end
      done)
    [ 5; 4; 3 ];
  (color, !rounds)

let mis_from_colors ?keep (t : Rooted.t) color =
  let n = t.Rooted.n in
  let keep = match keep with Some k -> k | None -> default_keep n in
  let kids = Rooted.children t in
  let in_mis = Array.make n false in
  let blocked v =
    let p = t.Rooted.parent.(v) in
    (p >= 0 && keep.(p) && in_mis.(p))
    || Array.exists (fun c -> keep.(c) && in_mis.(c)) kids.(v)
  in
  List.iter
    (fun cls ->
      for v = 0 to n - 1 do
        if keep.(v) && color.(v) = cls && not (blocked v) then in_mis.(v) <- true
      done)
    [ 0; 1; 2 ];
  in_mis

let mis ?keep ?schedule ~ids t =
  let color, rounds = three_color ?keep ?schedule ~ids t in
  (mis_from_colors ?keep t color, rounds + 3)
