(** FairRooted as a message-passing program (paper Sec. IV) for the
    {!Mis_sim} runtime, including a distributed Cole–Vishkin stage.

    Round schedule (T = the agreed Cole–Vishkin iteration count derived
    from the id bound, here n):

    - round 0: broadcast the random tag bit;
    - round 1: stage-1 decision (tag 0, parent tag 1); announce I;
    - round 2: coverage; announce participation in stage 2;
    - round 3: register the residual forest; kept nodes broadcast their
      initial color (their id);
    - T rounds of bit reduction; 3x2 rounds of shift-down color
      elimination; 3 rounds of per-color-class MIS joining;
    - final round: output.

    With identity ids this flips exactly the same coins and applies
    exactly the same local rules as {!Fair_rooted.run}, so outputs are
    identical for every seed (asserted in the tests). *)

type state

val program :
  parent_of:(int -> int) ->
  plan:Rand_plan.t ->
  schedule:int ->
  (state, Messages.t) Mis_sim.Program.t
(** [parent_of id] is the parent's id ([-1] for roots) — the rooted-tree
    input knowledge of the model. *)

val run :
  Mis_graph.Rooted.t -> Rand_plan.t -> Mis_sim.Runtime.outcome
(** Execute on the underlying forest with identity ids and
    [schedule = Cole_vishkin.iterations ~id_bound:n]. *)
