(** ColorMIS (paper Sec. VII): the k-fair MIS for k-colorable graphs.

    Given a proper coloring, run {!Construct_block} shipping a uniformly
    random color [c_u ∈ [k]] with each leader's flood (unchanged per hop);
    a node joins I iff it is in a block and its own color equals its
    leader's chosen color. Two neighbors in the same block can then never
    both join (their colors differ), so I is independent; Luby covers the
    rest. Every node joins with probability Ω(1/k) (Theorem 17), and for
    planar graphs the built-in coloring gives a constant k and O(log^2 n)
    rounds overall (Corollary 18). *)

type trace = {
  in_block : bool array;
  i1 : bool array;
  fallback_nodes : int;
  rounds : int;  (** Includes the coloring rounds when [run_planar] is used. *)
}

val gamma_default : n:int -> int

val run :
  ?p:float ->
  ?gamma:int ->
  Mis_graph.View.t ->
  coloring:int array ->
  k:int ->
  Rand_plan.t ->
  bool array
(** [coloring] must be proper on the active subgraph with colors in
    [0 .. k-1] (uncolored nodes may carry [-1]; they simply never join in
    stage 1, matching the paper's footnote 3). *)

val run_traced :
  ?p:float ->
  ?gamma:int ->
  Mis_graph.View.t ->
  coloring:int array ->
  k:int ->
  Rand_plan.t ->
  bool array * trace

val run_planar :
  ?p:float -> ?gamma:int -> Mis_graph.View.t -> Rand_plan.t -> bool array * trace
(** Compose the built-in planar coloring (<= 8 colors) with [run]. *)

val run_adaptive :
  ?p:float ->
  ?gamma:int ->
  Mis_graph.View.t ->
  coloring:int array ->
  Rand_plan.t ->
  bool array * trace
(** The paper's no-advance-knowledge-of-k variant: "the leader in each
    block counts the colors before randomly choosing one". Each leader
    picks uniformly among the distinct colors {e present in its block}, so
    a node's stage-1 join probability is Ω(1) / (colors in its block) —
    good inequality factors in regions of the graph that are colorable
    with few colors, even when the global palette is large (Sec. VII
    remark). *)
