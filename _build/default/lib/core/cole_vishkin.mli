(** Cole–Vishkin deterministic coin tossing [Cole & Vishkin 1986]: 3-color
    a rooted forest in O(log* n) rounds, then derive an MIS by processing
    the three color classes. This is the generic rooted-tree MIS that
    FairRooted (paper Sec. IV) runs on the nodes left uncovered after its
    fair first stage. *)

val iterations : id_bound:int -> int
(** Number of bit-reduction iterations that provably reduce any proper
    coloring with values in [\[0, id_bound)] to values in [\[0, 6)]: the
    fixed schedule a distributed execution agrees on from knowledge of the
    id range (O(log* id_bound)). *)

val three_color :
  ?keep:bool array ->
  ?schedule:int ->
  ids:int array ->
  Mis_graph.Rooted.t ->
  int array * int
(** [(colors, rounds)]: a proper 3-coloring (values 0..2) of the kept nodes
    of the forest; dropped nodes get color [-1]. [ids] must be distinct
    non-negative initial colors (typically node ids). [rounds] counts the
    communication rounds the distributed algorithm would use: one per
    bit-reduction iteration plus two per color-elimination phase.

    [schedule] fixes the number of reduction iterations (as a distributed
    execution must); by default iteration stops as soon as all colors are
    below 6. Extra iterations preserve properness and the < 6 bound, so
    any [schedule >= iterations ~id_bound] is correct. *)

val mis_from_colors :
  ?keep:bool array -> Mis_graph.Rooted.t -> int array -> bool array
(** Greedy MIS over color classes 0, 1, 2 (3 more rounds): a node joins
    when its class comes up and no forest neighbor joined earlier. *)

val mis :
  ?keep:bool array ->
  ?schedule:int ->
  ids:int array ->
  Mis_graph.Rooted.t ->
  bool array * int
(** [three_color] followed by [mis_from_colors]; returns the MIS of the
    kept subforest and the total round count. *)

(** Building blocks shared with the distributed implementation
    ({!Fair_rooted_distributed}); exposed so both engines provably apply
    identical local rules. *)

val virtual_parent_color : int -> int
(** The color a root compares against: any value differing from its own. *)

val reduce_step : own:int -> parent:int -> int
(** One bit-reduction step: [2i + bit_i(own)] for the lowest bit [i] where
    [own] and [parent] differ. *)

val shift_root_color : int -> int
(** The color a root adopts during a shift-down round. *)

val recolor : own_old:int -> parent_new:int -> int
(** The fresh color in [{0,1,2}] chosen by a node whose shifted color is
    being eliminated. *)
