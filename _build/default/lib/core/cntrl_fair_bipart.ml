module View = Mis_graph.View
module Traverse = Mis_graph.Traverse
module Program = Mis_sim.Program

type result = {
  joined : bool array;
  leader : int array;
  level : int array;
  rounds : int;
}

let parity_join ~depth ~bit = (depth + if bit then 1 else 0) mod 2 = 0

(* Exact synchronous relaxation for one component whose leader election
   might not converge within [d_hat] rounds. [members] are the component's
   nodes. Writes the adopted (leader, level) pairs into [lead]/[depth]. *)
let relax_component view members ~d_hat lead depth =
  let best = Hashtbl.create (2 * Array.length members) in
  Array.iter (fun u -> Hashtbl.replace best u u) members;
  (* Phase 1: flood-max for d_hat rounds (frontier-based; a node whose max
     did not change contributes nothing new). *)
  let frontier = ref (Array.to_list members) in
  for _ = 1 to d_hat do
    let updates = Hashtbl.create 16 in
    List.iter
      (fun u ->
        let bu = Hashtbl.find best u in
        View.iter_adj view u (fun v ->
            let cand = match Hashtbl.find_opt updates v with
              | Some c -> max c bu
              | None -> bu
            in
            Hashtbl.replace updates v cand))
      !frontier;
    let next = ref [] in
    Hashtbl.iter
      (fun v cand ->
        if cand > Hashtbl.find best v then begin
          Hashtbl.replace best v cand;
          next := v :: !next
        end)
      updates;
    frontier := !next
  done;
  (* Phase 2: leaders are the nodes that saw no larger id; BFS relaxation
     with candidate order (larger leader, then smaller depth). *)
  let better (l1, d1) (l2, d2) = l1 > l2 || (l1 = l2 && d1 < d2) in
  Array.iter
    (fun u ->
      if Hashtbl.find best u = u then begin
        lead.(u) <- u;
        depth.(u) <- 0
      end)
    members;
  let frontier = ref (List.filter (fun u -> lead.(u) = u) (Array.to_list members)) in
  for _ = 1 to d_hat do
    let updates = Hashtbl.create 16 in
    List.iter
      (fun u ->
        let cand = (lead.(u), depth.(u) + 1) in
        View.iter_adj view u (fun v ->
            let cand = match Hashtbl.find_opt updates v with
              | Some c -> if better c cand then c else cand
              | None -> cand
            in
            Hashtbl.replace updates v cand))
      !frontier;
    let next = ref [] in
    Hashtbl.iter
      (fun v (l, d) ->
        if lead.(v) < 0 || better (l, d) (lead.(v), depth.(v)) then begin
          lead.(v) <- l;
          depth.(v) <- d;
          next := v :: !next
        end)
      updates;
    frontier := !next
  done

let run view ~d_hat ~bit_of =
  if d_hat < 1 then invalid_arg "Cntrl_fair_bipart.run: d_hat must be >= 1";
  let n = View.n view in
  let lead = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let label, comp_count = Traverse.components view in
  let members = Traverse.component_members label comp_count in
  let dist = Array.make n (-1) in
  let queue = Mis_util.Int_queue.create () in
  Array.iter
    (fun nodes ->
      (* Component leader candidate: the maximum id (= index). *)
      let max_id = Array.fold_left max nodes.(0) nodes in
      (* BFS from it, confined to the component by construction. *)
      Mis_util.Int_queue.clear queue;
      dist.(max_id) <- 0;
      Mis_util.Int_queue.push queue max_id;
      let ecc = ref 0 in
      while not (Mis_util.Int_queue.is_empty queue) do
        let u = Mis_util.Int_queue.pop queue in
        View.iter_adj view u (fun v ->
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              if dist.(v) > !ecc then ecc := dist.(v);
              Mis_util.Int_queue.push queue v
            end)
      done;
      if !ecc <= d_hat then
        (* Single successful leader: the direct formula is exact. *)
        Array.iter
          (fun u ->
            lead.(u) <- max_id;
            depth.(u) <- dist.(u))
          nodes
      else relax_component view nodes ~d_hat lead depth;
      Array.iter (fun u -> dist.(u) <- -1) nodes)
    members;
  let joined = Array.make n false in
  View.iter_active view (fun u ->
      if View.degree view u = 0 then begin
        joined.(u) <- true;
        lead.(u) <- u;
        depth.(u) <- 0
      end
      else if lead.(u) >= 0 then
        joined.(u) <- parity_join ~depth:depth.(u) ~bit:(bit_of lead.(u)));
  { joined; leader = lead; level = depth; rounds = 2 * d_hat }

type message =
  | Max_id of int
  | Bfs of { lead : int; depth : int; bit : bool }

type state = {
  round : int;
  best : int;
  lead : int;
  depth : int;
  bit : bool;
}

let program ~d_hat ~bit_of : (state, message) Program.t =
  if d_hat < 1 then invalid_arg "Cntrl_fair_bipart.program: d_hat must be >= 1";
  let init (ctx : Mis_sim.Node_ctx.t) =
    ( { round = 0; best = ctx.id; lead = -1; depth = -1; bit = false },
      [ Program.Broadcast (Max_id ctx.id) ] )
  in
  let receive (ctx : Mis_sim.Node_ctx.t) st inbox =
    let r = st.round + 1 in
    if r <= d_hat then begin
      (* Phase 1: leader election. *)
      let best =
        List.fold_left
          (fun acc (_, m) -> match m with Max_id v -> max acc v | Bfs _ -> acc)
          st.best inbox
      in
      let st = { st with round = r; best } in
      if r < d_hat then (Program.Continue st, [ Program.Broadcast (Max_id best) ])
      else if best = ctx.id then begin
        (* I am the leader: flip the bit, start the BFS. *)
        let bit = bit_of ctx.id in
        let st = { st with lead = ctx.id; depth = 0; bit } in
        (Program.Continue st, [ Program.Broadcast (Bfs { lead = ctx.id; depth = 0; bit }) ])
      end
      else (Program.Continue st, [])
    end
    else begin
      (* Phase 2: BFS adoption. *)
      let better (l1, d1) (l2, d2) = l1 > l2 || (l1 = l2 && d1 < d2) in
      let st =
        List.fold_left
          (fun st (_, m) ->
            match m with
            | Max_id _ -> st
            | Bfs { lead; depth; bit } ->
              let cand = (lead, depth + 1) in
              if st.lead < 0 || better cand (st.lead, st.depth) then
                { st with lead; depth = depth + 1; bit }
              else st)
          { st with round = r }
          inbox
      in
      if r < 2 * d_hat then begin
        let actions =
          if st.lead >= 0 then
            [ Program.Broadcast (Bfs { lead = st.lead; depth = st.depth; bit = st.bit }) ]
          else []
        in
        (Program.Continue st, actions)
      end
      else begin
        let decision =
          if Mis_sim.Node_ctx.degree ctx = 0 then true
          else if st.lead < 0 then false
          else parity_join ~depth:st.depth ~bit:st.bit
        in
        (Program.Output decision, [])
      end
    end
  in
  { Program.name = "cntrl_fair_bipart"; init; receive }

let run_distributed view ~plan ~stage ~d_hat =
  let prog = program ~d_hat ~bit_of:(fun id -> Rand_plan.node_bit plan ~stage ~node:id) in
  Mis_sim.Runtime.run
    ~max_rounds:((2 * d_hat) + 2)
    ~rng_of:(fun u -> Rand_plan.node_stream plan ~stage ~node:u)
    view prog
