module View = Mis_graph.View
module Stage = Rand_plan.Stage

type trace = {
  in_block : bool array;
  i1 : bool array;
  violations_removed : int;
  fallback_nodes : int;
  rounds : int;
}

let ceil_log2 n =
  let rec loop k acc = if acc >= n then k else loop (k + 1) (2 * acc) in
  loop 0 1

let gamma_default ~n = max 1 (2 * ceil_log2 (max n 2))

let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0

let run_traced ?(p = 0.5) ?gamma view plan =
  let n = View.n view in
  let gamma = match gamma with
    | Some g -> if g < 1 then invalid_arg "Fair_bipart.run: gamma" else g
    | None -> gamma_default ~n
  in
  let cfg =
    { Construct_block.gamma;
      radius_of =
        (fun u ->
          Rand_plan.node_radius plan ~stage:Stage.fair_bipart_radius ~node:u ~p
            ~gamma);
      payload_of =
        (fun u ->
          if Rand_plan.node_bit plan ~stage:Stage.fair_bipart_bit ~node:u then 1
          else 0);
      flip_per_hop = true }
  in
  let blocks = Construct_block.run view cfg in
  let i1_raw =
    Array.init n (fun u ->
        blocks.Construct_block.in_block.(u) && blocks.Construct_block.payload.(u) = 1)
  in
  (* Defensive repair: a no-op on bipartite graphs (Lemma 14). *)
  let i1 = Mis.remove_violations view i1_raw in
  let violations_removed = count i1_raw - count i1 in
  let rest = Mis.uncovered view i1 in
  let fallback_nodes = count rest in
  let final, luby_rounds =
    if fallback_nodes = 0 then (i1, 0)
    else begin
      let g = View.graph view in
      let base_edges =
        Array.init (Mis_graph.Graph.m g) (View.usable_edge view) in
      let v2 = View.restrict ~nodes:rest ~edges:base_edges g in
      let joined, stats = Luby.run_stats ~stage:Stage.fair_bipart_luby v2 plan in
      (Array.init n (fun u -> i1.(u) || joined.(u)), 3 * stats.Luby.phases)
    end
  in
  let rounds = blocks.Construct_block.rounds + 1 + luby_rounds in
  ( final,
    { in_block = blocks.Construct_block.in_block; i1; violations_removed;
      fallback_nodes; rounds } )

let run ?p ?gamma view plan = fst (run_traced ?p ?gamma view plan)
