module Program = Mis_sim.Program
module Node_ctx = Mis_sim.Node_ctx
module Stage = Rand_plan.Stage
open Messages

type state = {
  round : int;
  tag : bool;
  i1 : bool;
  keep : bool;
  parent_kept : bool;
  color : int;
  old_color : int;
  blocked : bool;
  in_mis : bool;
}

let from_parent parent inbox =
  List.find_map
    (fun (sender, m) -> if sender = parent then Some m else None)
    inbox

let parent_color parent inbox =
  match from_parent parent inbox with
  | Some (Color c) -> c
  | Some (Max_id _ | Bfs _ | Member _ | Value _ | In_mis | Withdraw) | None ->
    invalid_arg "Fair_rooted_distributed: missing parent color"

let any_member inbox =
  List.exists (fun (_, m) -> m = Member true) inbox

let program ~parent_of ~plan ~schedule : (state, Messages.t) Program.t =
  if schedule < 0 then invalid_arg "Fair_rooted_distributed.program: schedule";
  let t = schedule in
  let init (ctx : Node_ctx.t) =
    let tag = Rand_plan.node_bit plan ~stage:Stage.fair_rooted_tag ~node:ctx.id in
    ( { round = 0; tag; i1 = false; keep = false; parent_kept = false;
        color = -1; old_color = -1; blocked = false; in_mis = false },
      [ Program.Broadcast (Member tag) ] )
  in
  let receive (ctx : Node_ctx.t) st inbox =
    let r = st.round + 1 in
    let st = { st with round = r } in
    let id = ctx.id in
    let parent = parent_of id in
    if r = 1 then begin
      (* Stage 1: join I iff my tag is 0 and my parent's tag is 1. *)
      let ptag =
        if parent < 0 then
          Rand_plan.node_bit plan ~stage:Stage.fair_rooted_virtual ~node:id
        else
          match from_parent parent inbox with
          | Some (Member b) -> b
          | _ -> invalid_arg "Fair_rooted_distributed: missing parent tag"
      in
      let i1 = (not st.tag) && ptag in
      (Program.Continue { st with i1 }, [ Program.Broadcast (Member i1) ])
    end
    else if r = 2 then begin
      let covered = st.i1 || any_member inbox in
      let keep = not covered in
      (Program.Continue { st with keep }, [ Program.Broadcast (Member keep) ])
    end
    else if r = 3 then begin
      let parent_kept =
        parent >= 0 && from_parent parent inbox = Some (Member true)
      in
      let st = { st with parent_kept } in
      if st.keep then
        (Program.Continue { st with color = id }, [ Program.Broadcast (Color id) ])
      else (Program.Continue st, [])
    end
    else if r <= 3 + t then begin
      (* Cole–Vishkin bit reduction, one iteration per round. *)
      if not st.keep then (Program.Continue st, [])
      else begin
        let pc =
          if st.parent_kept then parent_color parent inbox
          else Cole_vishkin.virtual_parent_color st.color
        in
        let color = Cole_vishkin.reduce_step ~own:st.color ~parent:pc in
        (Program.Continue { st with color }, [ Program.Broadcast (Color color) ])
      end
    end
    else if r <= 9 + t then begin
      (* Three shift-down phases, two rounds each, eliminating 5, 4, 3. *)
      if not st.keep then (Program.Continue st, [])
      else begin
        let k = (r - (4 + t)) / 2 in
        let target = List.nth [ 5; 4; 3 ] k in
        let is_shift_round = (r - (4 + t)) mod 2 = 0 in
        if is_shift_round then begin
          let old_color = st.color in
          let color =
            if st.parent_kept then parent_color parent inbox
            else Cole_vishkin.shift_root_color old_color
          in
          ( Program.Continue { st with color; old_color },
            [ Program.Broadcast (Color color) ] )
        end
        else begin
          let color =
            if st.color = target then begin
              let parent_new =
                if st.parent_kept then parent_color parent inbox else -1
              in
              Cole_vishkin.recolor ~own_old:st.old_color ~parent_new
            end
            else st.color
          in
          (Program.Continue { st with color }, [ Program.Broadcast (Color color) ])
        end
      end
    end
    else if r <= 12 + t then begin
      (* MIS from the 3-coloring: one round per color class. *)
      let cls = r - (10 + t) in
      let blocked = st.blocked || any_member inbox in
      let st = { st with blocked } in
      if st.keep && st.color = cls && (not blocked) && not st.in_mis then
        (Program.Continue { st with in_mis = true },
         [ Program.Broadcast (Member true) ])
      else (Program.Continue st, [])
    end
    else (Program.Output (st.i1 || st.in_mis), [])
  in
  { Program.name = "fair_rooted"; init; receive }

let run (rooted : Mis_graph.Rooted.t) plan =
  let n = rooted.Mis_graph.Rooted.n in
  let schedule = Cole_vishkin.iterations ~id_bound:(max n 1) in
  let parent_of id = rooted.Mis_graph.Rooted.parent.(id) in
  let view = Mis_graph.View.full (Mis_graph.Rooted.to_graph rooted) in
  let prog = program ~parent_of ~plan ~schedule in
  Mis_sim.Runtime.run
    ~max_rounds:(schedule + 16)
    ~rng_of:(fun u -> Rand_plan.node_stream plan ~stage:98 ~node:u)
    view prog
