module View = Mis_graph.View
module Splitmix = Mis_util.Splitmix
module Stage = Rand_plan.Stage

type outcome = {
  colors : int array;
  palette : int;
  rounds : int;
}

let ceil_log2 n =
  let rec loop k acc = if acc >= n then k else loop (k + 1) (2 * acc) in
  loop 0 1

(* One conflict-resolution sweep shared by both algorithms: every node of
   [pending] proposes a uniform color among the {e lowest}
   (1 + #uncolored-neighbors) colors of its palette not used by colored
   neighbors — enough randomness to resolve conflicts quickly, while
   keeping the number of colors actually used near the graph's degeneracy
   rather than Δ. Proposals that collide with a neighboring proposal are
   withdrawn. Returns the still-uncolored nodes. *)
let propose_round view ~colors ~proposal ~palette_of ~stream_of pending =
  List.iter
    (fun v ->
      let forbidden = Hashtbl.create 8 in
      let uncolored = ref 0 in
      View.iter_adj view v (fun w ->
          if colors.(w) >= 0 then Hashtbl.replace forbidden colors.(w) ()
          else incr uncolored);
      let available = ref [] in
      for c = palette_of v - 1 downto 0 do
        if not (Hashtbl.mem forbidden c) then available := c :: !available
      done;
      match !available with
      | [] -> invalid_arg "Distributed_coloring: palette exhausted"
      | choices ->
        let k = min (List.length choices) (!uncolored + 1) in
        proposal.(v) <- List.nth choices (Splitmix.int (stream_of v) k))
    pending;
  let still = ref [] in
  List.iter
    (fun v ->
      let clash = ref false in
      View.iter_adj view v (fun w ->
          if proposal.(w) >= 0 && proposal.(w) = proposal.(v) then clash := true);
      if !clash then still := v :: !still else colors.(v) <- proposal.(v))
    pending;
  List.iter (fun v -> proposal.(v) <- -1) pending;
  List.rev !still

let randomized_greedy ?(stage = Stage.coloring_greedy) ?max_rounds view plan =
  let n = View.n view in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 64 + (16 * ceil_log2 (max n 2))
  in
  let colors = Array.make n (-1) in
  let proposal = Array.make n (-1) in
  let streams = Hashtbl.create 64 in
  let stream_of v =
    match Hashtbl.find_opt streams v with
    | Some s -> s
    | None ->
      let s = Rand_plan.node_stream plan ~stage ~node:v in
      Hashtbl.add streams v s;
      s
  in
  let palette =
    let best = ref 0 in
    View.iter_active view (fun v -> best := max !best (View.degree view v));
    !best + 1
  in
  let pending = ref (Array.to_list (View.active_nodes view)) in
  let rounds = ref 0 in
  while !pending <> [] && !rounds < max_rounds do
    incr rounds;
    pending :=
      propose_round view ~colors ~proposal
        ~palette_of:(fun v -> View.degree view v + 1)
        ~stream_of !pending
  done;
  { colors; palette; rounds = !rounds }

let h_partition_partial view ~degree_bound =
  if degree_bound < 0 then invalid_arg "Distributed_coloring.h_partition";
  let n = View.n view in
  let layer = Array.make n (-1) in
  let remaining = Array.make n false in
  let residual_degree = Array.make n 0 in
  View.iter_active view (fun v ->
      remaining.(v) <- true;
      residual_degree.(v) <- View.degree view v);
  let left = ref (View.count_active view) in
  let l = ref 0 in
  let stuck = ref false in
  while !left > 0 && not !stuck do
    let peel = ref [] in
    View.iter_active view (fun v ->
        if remaining.(v) && residual_degree.(v) <= degree_bound then
          peel := v :: !peel);
    match !peel with
    | [] -> stuck := true
    | batch ->
      List.iter
        (fun v ->
          layer.(v) <- !l;
          remaining.(v) <- false;
          decr left)
        batch;
      List.iter
        (fun v ->
          View.iter_adj view v (fun w ->
              if remaining.(w) then residual_degree.(w) <- residual_degree.(w) - 1))
        batch;
      incr l
  done;
  let core = Array.make n false in
  View.iter_active view (fun v -> if remaining.(v) then core.(v) <- true);
  (layer, !l, core)

let h_partition view ~degree_bound =
  let layer, count, core = h_partition_partial view ~degree_bound in
  if Array.exists (fun b -> b) core then None else Some (layer, count)

let layered ?(stage = Stage.coloring_layered) ?max_rounds_per_layer view plan
    ~degree_bound =
  match h_partition view ~degree_bound with
  | None -> None
  | Some (layer, layer_count) ->
    let n = View.n view in
    let max_rounds_per_layer =
      match max_rounds_per_layer with
      | Some r -> r
      | None -> 64 + (16 * ceil_log2 (max n 2))
    in
    let colors = Array.make n (-1) in
    let proposal = Array.make n (-1) in
    let streams = Hashtbl.create 64 in
    let stream_of v =
      match Hashtbl.find_opt streams v with
      | Some s -> s
      | None ->
        let s = Rand_plan.node_stream plan ~stage ~node:v in
        Hashtbl.add streams v s;
        s
    in
    let rounds = ref layer_count (* the peeling rounds themselves *) in
    (* Top layer first: when a layer is colored, all its neighbors in
       higher layers already are, and it has at most [degree_bound] such
       neighbors, so palette 0..degree_bound always has a free color. *)
    for l = layer_count - 1 downto 0 do
      let pending = ref [] in
      View.iter_active view (fun v -> if layer.(v) = l then pending := v :: !pending);
      let spent = ref 0 in
      while !pending <> [] && !spent < max_rounds_per_layer do
        incr spent;
        incr rounds;
        pending :=
          propose_round view ~colors ~proposal
            ~palette_of:(fun _ -> degree_bound + 1)
            ~stream_of !pending
      done
    done;
    Some { colors; palette = degree_bound + 1; rounds = !rounds }

let hybrid ?(stage = Stage.coloring_layered) ?max_rounds_per_layer view plan
    ~degree_bound =
  let layer, layer_count, core = h_partition_partial view ~degree_bound in
  let n = View.n view in
  let max_rounds_per_layer =
    match max_rounds_per_layer with
    | Some r -> r
    | None -> 64 + (16 * ceil_log2 (max n 2))
  in
  let colors = Array.make n (-1) in
  let proposal = Array.make n (-1) in
  let streams = Hashtbl.create 64 in
  let stream_of v =
    match Hashtbl.find_opt streams v with
    | Some s -> s
    | None ->
      let s = Rand_plan.node_stream plan ~stage ~node:v in
      Hashtbl.add streams v s;
      s
  in
  let rounds = ref layer_count in
  let color_group pending ~palette_of =
    let pending = ref pending in
    let spent = ref 0 in
    while !pending <> [] && !spent < max_rounds_per_layer do
      incr spent;
      incr rounds;
      pending := propose_round view ~colors ~proposal ~palette_of ~stream_of !pending
    done
  in
  (* Dense core first, with the full (deg+1) palette. *)
  let core_nodes = ref [] in
  View.iter_active view (fun v -> if core.(v) then core_nodes := v :: !core_nodes);
  let max_core_color = ref 0 in
  if !core_nodes <> [] then begin
    color_group !core_nodes ~palette_of:(fun v -> View.degree view v + 1);
    List.iter (fun v -> max_core_color := max !max_core_color colors.(v)) !core_nodes
  end;
  (* Peeled layers top-down: a peeled node has at most [degree_bound]
     neighbors in its own or higher layers (core included), so palette
     [0 .. degree_bound] always has a free color. *)
  for l = layer_count - 1 downto 0 do
    let pending = ref [] in
    View.iter_active view (fun v -> if layer.(v) = l then pending := v :: !pending);
    color_group !pending ~palette_of:(fun _ -> degree_bound + 1)
  done;
  { colors; palette = max (degree_bound + 1) (!max_core_color + 1);
    rounds = !rounds }

let planar ?stage view plan =
  match layered ?stage view plan ~degree_bound:7 with
  | Some outcome -> outcome
  | None -> hybrid ?stage view plan ~degree_bound:7
