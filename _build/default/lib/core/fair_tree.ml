module View = Mis_graph.View
module Graph = Mis_graph.Graph
module Stage = Rand_plan.Stage

type trace = {
  cut : bool array;
  i1 : bool array;
  i2 : bool array;
  i3 : bool array;
  fallback_nodes : int;
  rounds : int;
}

let ceil_log2 n =
  let rec loop k acc = if acc >= n then k else loop (k + 1) (2 * acc) in
  loop 0 1

let gamma_default ~n = (4 * ceil_log2 (max n 2)) + 2

let run_traced ?gamma view plan =
  let g = View.graph view in
  let n = Graph.n g and m = Graph.m g in
  let gamma = match gamma with
    | Some v -> if v < 1 then invalid_arg "Fair_tree.run: gamma" else v
    | None -> gamma_default ~n
  in
  let base_nodes = Array.init n (View.node_active view) in
  let base_edges = Array.init m (View.usable_edge view) in
  (* Stage 1: cut coins, then a fair MIS inside each uncut component. *)
  let cut =
    Array.init m (fun e ->
        base_edges.(e)
        &&
        let u, v = Graph.edge_endpoints g e in
        Rand_plan.edge_bit plan ~stage:Stage.fair_tree_cut ~u ~v)
  in
  let edges1 = Array.init m (fun e -> base_edges.(e) && not cut.(e)) in
  let v1 = View.restrict ~nodes:base_nodes ~edges:edges1 g in
  let r1 =
    Cntrl_fair_bipart.run v1 ~d_hat:gamma
      ~bit_of:(fun u -> Rand_plan.node_bit plan ~stage:Stage.fair_tree_s1 ~node:u)
  in
  let i1 = r1.Cntrl_fair_bipart.joined in
  (* Stage 2: resolve conflicts on the subgraph induced by I. *)
  let v2 = View.restrict ~nodes:i1 ~edges:base_edges g in
  let r2 =
    Cntrl_fair_bipart.run v2 ~d_hat:gamma
      ~bit_of:(fun u -> Rand_plan.node_bit plan ~stage:Stage.fair_tree_s2 ~node:u)
  in
  let i2 = Array.init n (fun u -> i1.(u) && r2.Cntrl_fair_bipart.joined.(u)) in
  (* Stage 3: maximalize on uncovered nodes. *)
  let uncovered = Mis.uncovered view i2 in
  let v3 = View.restrict ~nodes:uncovered ~edges:base_edges g in
  let r3 =
    Cntrl_fair_bipart.run v3 ~d_hat:gamma
      ~bit_of:(fun u -> Rand_plan.node_bit plan ~stage:Stage.fair_tree_s3 ~node:u)
  in
  let i3 =
    Array.init n (fun u ->
        i2.(u) || (uncovered.(u) && r3.Cntrl_fair_bipart.joined.(u)))
  in
  (* Stage 4: repair independence, then Luby on anything still uncovered. *)
  let i4 = Mis.remove_violations view i3 in
  let rest = Mis.uncovered view i4 in
  let fallback_nodes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 rest in
  let final, luby_rounds =
    if fallback_nodes = 0 then (i4, 0)
    else begin
      let v5 = View.restrict ~nodes:rest ~edges:base_edges g in
      let joined, stats = Luby.run_stats ~stage:Stage.fair_tree_luby v5 plan in
      (Array.init n (fun u -> i4.(u) || joined.(u)), 3 * stats.Luby.phases)
    end
  in
  let rounds = (3 * ((2 * gamma) + 1)) + 1 + luby_rounds in
  (final, { cut; i1; i2; i3; fallback_nodes; rounds })

let run ?gamma view plan = fst (run_traced ?gamma view plan)
