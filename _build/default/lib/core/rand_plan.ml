module Splitmix = Mis_util.Splitmix

type t = { base : int64; seed_int : int }

let make s = { base = Splitmix.derive (Int64.of_int s) [ 0x5EED ]; seed_int = s }
let seed t = t.seed_int

module Stage = struct
  let fair_rooted_tag = 1
  let fair_rooted_virtual = 2
  let fair_tree_cut = 10
  let fair_tree_s1 = 11
  let fair_tree_s2 = 12
  let fair_tree_s3 = 13
  let fair_tree_luby = 14
  let fair_bipart_radius = 20
  let fair_bipart_bit = 21
  let fair_bipart_luby = 22
  let color_mis_radius = 30
  let color_mis_choice = 31
  let color_mis_luby = 32
  let coloring_greedy = 40
  let coloring_layered = 41
  let luby_main = 50
  let centralized = 60
end

let stream_of t keys = Splitmix.of_key (Splitmix.derive t.base keys)

let node_bit t ~stage ~node = Splitmix.bool (stream_of t [ stage; 1; node ])

let edge_bit t ~stage ~u ~v =
  let a = min u v and b = max u v in
  Splitmix.bool (stream_of t [ stage; 2; a; b ])

let node_value t ~stage ~round ~node =
  Splitmix.bits62 (stream_of t [ stage; 3; round; node ])

let node_int t ~stage ~node ~bound =
  Splitmix.int (stream_of t [ stage; 4; node ]) bound

let node_radius t ~stage ~node ~p ~gamma =
  Splitmix.geometric_truncated (stream_of t [ stage; 5; node ]) ~p ~gamma

let node_stream t ~stage ~node = stream_of t [ stage; 6; node ]
