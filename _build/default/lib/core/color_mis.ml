module View = Mis_graph.View
module Stage = Rand_plan.Stage

type trace = {
  in_block : bool array;
  i1 : bool array;
  fallback_nodes : int;
  rounds : int;
}

let ceil_log2 n =
  let rec loop k acc = if acc >= n then k else loop (k + 1) (2 * acc) in
  loop 0 1

let gamma_default ~n = max 1 (2 * ceil_log2 (max n 2))

let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0

(* Finish a stage-1 independent set into an MIS (shared by all variants):
   defensive violation removal, then Luby on the uncovered remainder. *)
let finish view plan blocks i1_raw =
  let n = View.n view in
  let i1 = Mis.remove_violations view i1_raw in
  let rest = Mis.uncovered view i1 in
  let fallback_nodes = count rest in
  let final, luby_rounds =
    if fallback_nodes = 0 then (i1, 0)
    else begin
      let g = View.graph view in
      let base_edges = Array.init (Mis_graph.Graph.m g) (View.usable_edge view) in
      let v2 = View.restrict ~nodes:rest ~edges:base_edges g in
      let joined, stats = Luby.run_stats ~stage:Stage.color_mis_luby v2 plan in
      (Array.init n (fun u -> i1.(u) || joined.(u)), 3 * stats.Luby.phases)
    end
  in
  let rounds = blocks.Construct_block.rounds + 1 + luby_rounds in
  ( final,
    { in_block = blocks.Construct_block.in_block; i1; fallback_nodes; rounds } )

let run_traced ?(p = 0.5) ?gamma view ~coloring ~k plan =
  if k < 1 then invalid_arg "Color_mis.run: k";
  let n = View.n view in
  if Array.length coloring <> n then invalid_arg "Color_mis.run: coloring length";
  let gamma = match gamma with
    | Some g -> if g < 1 then invalid_arg "Color_mis.run: gamma" else g
    | None -> gamma_default ~n
  in
  let cfg =
    { Construct_block.gamma;
      radius_of =
        (fun u ->
          Rand_plan.node_radius plan ~stage:Stage.color_mis_radius ~node:u ~p
            ~gamma);
      payload_of =
        (fun u -> Rand_plan.node_int plan ~stage:Stage.color_mis_choice ~node:u ~bound:k);
      flip_per_hop = false }
  in
  let blocks = Construct_block.run view cfg in
  let i1_raw =
    Array.init n (fun u ->
        blocks.Construct_block.in_block.(u)
        && coloring.(u) >= 0
        && coloring.(u) = blocks.Construct_block.payload.(u))
  in
  (* Violation removal inside [finish] is a no-op when [coloring] is
     proper; it keeps the output a valid MIS even for a broken coloring. *)
  finish view plan blocks i1_raw

let run ?p ?gamma view ~coloring ~k plan =
  fst (run_traced ?p ?gamma view ~coloring ~k plan)

let run_adaptive ?(p = 0.5) ?gamma view ~coloring plan =
  let n = View.n view in
  if Array.length coloring <> n then
    invalid_arg "Color_mis.run_adaptive: coloring length";
  let gamma = match gamma with
    | Some g -> if g < 1 then invalid_arg "Color_mis.run_adaptive: gamma" else g
    | None -> gamma_default ~n
  in
  let cfg =
    { Construct_block.gamma;
      radius_of =
        (fun u ->
          Rand_plan.node_radius plan ~stage:Stage.color_mis_radius ~node:u ~p
            ~gamma);
      payload_of = (fun _ -> 0);
      flip_per_hop = false }
  in
  let blocks = Construct_block.run view cfg in
  (* The leader counts the distinct colors present in its block (an extra
     O(gamma)-round aggregation in a real execution) and picks one
     uniformly. *)
  let block_colors : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  View.iter_active view (fun u ->
      if blocks.Construct_block.in_block.(u) && coloring.(u) >= 0 then begin
        let leader = blocks.Construct_block.leader.(u) in
        match Hashtbl.find_opt block_colors leader with
        | Some colors ->
          if not (List.mem coloring.(u) !colors) then
            colors := coloring.(u) :: !colors
        | None -> Hashtbl.add block_colors leader (ref [ coloring.(u) ])
      end);
  let chosen : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun leader colors ->
      let sorted = List.sort compare !colors in
      let k = List.length sorted in
      let pick =
        List.nth sorted
          (Rand_plan.node_int plan ~stage:Stage.color_mis_choice ~node:leader
             ~bound:k)
      in
      Hashtbl.replace chosen leader pick)
    block_colors;
  let i1_raw =
    Array.init n (fun u ->
        blocks.Construct_block.in_block.(u)
        && coloring.(u) >= 0
        && Hashtbl.find_opt chosen blocks.Construct_block.leader.(u)
           = Some coloring.(u))
  in
  finish view plan blocks i1_raw

let run_planar ?p ?gamma view plan =
  let coloring = Distributed_coloring.planar view plan in
  let mis, trace =
    run_traced ?p ?gamma view
      ~coloring:coloring.Distributed_coloring.colors
      ~k:coloring.Distributed_coloring.palette plan
  in
  (mis, { trace with rounds = trace.rounds + coloring.Distributed_coloring.rounds })
