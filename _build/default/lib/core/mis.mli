(** MIS problem definitions (paper Sec. III): result records and the
    correctness predicates every algorithm must satisfy on every run —
    termination, independence and maximality. *)

exception Invalid of string

val is_independent : Mis_graph.View.t -> bool array -> bool
val is_maximal : Mis_graph.View.t -> bool array -> bool
val is_mis : Mis_graph.View.t -> bool array -> bool

val verify : name:string -> Mis_graph.View.t -> bool array -> unit
(** @raise Invalid with a diagnostic when the set is not an MIS of the
    active subgraph. *)

val violations : Mis_graph.View.t -> bool array -> (int * int) list
(** Usable edges whose both endpoints are in the set. *)

val remove_violations : Mis_graph.View.t -> bool array -> bool array
(** FairTree stage-4 repair: drop {e every} member that has a member
    neighbor (both endpoints of each violation leave). Returns a fresh
    array. *)

val uncovered : Mis_graph.View.t -> bool array -> bool array
(** Active nodes that are neither in the set nor adjacent to it. *)
