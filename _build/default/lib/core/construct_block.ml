module View = Mis_graph.View

type config = {
  gamma : int;
  radius_of : int -> int;
  payload_of : int -> int;
  flip_per_hop : bool;
}

type result = {
  leader : int array;
  in_block : bool array;
  payload : int array;
  rounds : int;
}

let check_config cfg =
  if cfg.gamma < 0 then invalid_arg "Construct_block: gamma"

let observed_payload cfg ~source ~dist =
  let p = cfg.payload_of source in
  if cfg.flip_per_hop && dist land 1 = 1 then 1 - p else p

let finish view ~gamma ~best_id ~best_rem ~best_pay =
  let n = View.n view in
  let leader = Array.make n (-1) in
  let in_block = Array.make n false in
  let payload = Array.make n (-1) in
  View.iter_active view (fun v ->
      leader.(v) <- best_id.(v);
      in_block.(v) <- best_id.(v) >= 0 && best_rem.(v) > 0;
      payload.(v) <- best_pay.(v));
  { leader; in_block; payload; rounds = gamma * (gamma + 1) }

let run view cfg =
  check_config cfg;
  let n = View.n view in
  let best_id = Array.make n (-1) in
  let best_rem = Array.make n (-1) in
  let best_pay = Array.make n (-1) in
  (* Bounded BFS scratch, reused across sources via an epoch counter. *)
  let seen_epoch = Array.make n (-1) in
  let dist = Array.make n 0 in
  let queue = Mis_util.Int_queue.create () in
  let epoch = ref 0 in
  View.iter_active view (fun source ->
      let r = cfg.radius_of source in
      if r < 0 || r > cfg.gamma then invalid_arg "Construct_block: radius_of";
      let ep = !epoch in
      incr epoch;
      Mis_util.Int_queue.clear queue;
      seen_epoch.(source) <- ep;
      dist.(source) <- 0;
      Mis_util.Int_queue.push queue source;
      while not (Mis_util.Int_queue.is_empty queue) do
        let u = Mis_util.Int_queue.pop queue in
        let d = dist.(u) in
        if source > best_id.(u) then begin
          best_id.(u) <- source;
          best_rem.(u) <- r - d;
          best_pay.(u) <- observed_payload cfg ~source ~dist:d
        end;
        if d < r then
          View.iter_adj view u (fun v ->
              if seen_epoch.(v) <> ep then begin
                seen_epoch.(v) <- ep;
                dist.(v) <- d + 1;
                Mis_util.Int_queue.push queue v
              end)
      done);
  finish view ~gamma:cfg.gamma ~best_id ~best_rem ~best_pay

let run_tables view cfg =
  check_config cfg;
  let n = View.n view in
  let gamma = cfg.gamma in
  let slots = gamma + 1 in
  (* Leader tables: l_table.(v).(i) = largest id seen with i range
     remaining; b_table the corresponding payload. *)
  let l_table = Array.make_matrix n slots (-1) in
  let b_table = Array.make_matrix n slots (-1) in
  View.iter_active view (fun v ->
      let r = cfg.radius_of v in
      if r < 0 || r > gamma then invalid_arg "Construct_block: radius_of";
      l_table.(v).(r) <- v;
      b_table.(v).(r) <- cfg.payload_of v);
  for _superround = 1 to gamma do
    let l_old = Array.map Array.copy l_table in
    let b_old = Array.map Array.copy b_table in
    View.iter_active view (fun v ->
        View.iter_adj view v (fun u ->
            (* v receives u's table: each entry drops one range unit and is
               merged at the lower slot if its id is larger. *)
            for i = 1 to gamma do
              let id = l_old.(u).(i) in
              if id > l_table.(v).(i - 1) then begin
                l_table.(v).(i - 1) <- id;
                let p = b_old.(u).(i) in
                b_table.(v).(i - 1) <-
                  (if cfg.flip_per_hop && p >= 0 then 1 - p else p)
              end
            done))
  done;
  let best_id = Array.make n (-1) in
  let best_rem = Array.make n (-1) in
  let best_pay = Array.make n (-1) in
  View.iter_active view (fun v ->
      let best = ref (-1) and best_slot = ref (-1) in
      for i = 0 to gamma do
        if l_table.(v).(i) > !best then begin
          best := l_table.(v).(i);
          best_slot := i
        end
        else if l_table.(v).(i) = !best && i > !best_slot then best_slot := i
      done;
      (* The leader may appear in several slots; the block rule reads the
         highest one (shortest path = largest remaining range). *)
      let highest = ref !best_slot in
      for i = 0 to gamma do
        if l_table.(v).(i) = !best && i > !highest then highest := i
      done;
      best_id.(v) <- !best;
      best_rem.(v) <- !highest;
      best_pay.(v) <- b_table.(v).(!highest));
  finish view ~gamma ~best_id ~best_rem ~best_pay
