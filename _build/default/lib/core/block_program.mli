(** The generic distributed block-decomposition MIS skeleton shared by
    FairBipart and ColorMIS (paper Secs. VI–VII): γ superrounds of
    Construct_Block leader-table shipping (one O(log n)-bit entry per
    round), a stage-1 join decision from the observed leader payload, a
    coverage announcement, and a Luby stage over the uncovered nodes. *)

type message =
  | Entry of { slot : int; id : int; payload : int }
      (** One leader-table entry; [slot] is the receiver-side slot and
          [payload] has already been flipped for the hop when the config
          says so. *)
  | Member of bool
  | Value of int
  | In_mis
  | Withdraw

type config = {
  gamma : int;
  radius_of : int -> int;  (** Per-node broadcast radius (by id). *)
  payload_of : int -> int;  (** Payload shipped with the node's own entry. *)
  flip_per_hop : bool;  (** Complement a {0,1} payload at each hop. *)
  joins : id:int -> payload:int -> bool;
      (** Stage-1 rule for a node that landed in a block, given the
          payload observed for its leader. *)
  luby_value : id:int -> phase:int -> int;  (** Fallback-stage priorities. *)
}

type state

val program : config -> (state, message) Mis_sim.Program.t
