(** Message vocabulary shared by the composite distributed programs
    (FairTree, FairRooted). All variants fit in O(log n) bits. *)

type t =
  | Max_id of int  (** Leader-election flood (CntrlFairBipart phase 1). *)
  | Bfs of { lead : int; depth : int; bit : bool }
      (** Leader BFS (CntrlFairBipart phase 2). *)
  | Member of bool  (** Stage-boundary membership/coverage announcement. *)
  | Color of int  (** Cole–Vishkin color exchange. *)
  | Value of int  (** Luby per-phase priority. *)
  | In_mis  (** Luby: sender joined; you are covered. *)
  | Withdraw  (** Luby: sender halted; remove from competition. *)
