module View = Mis_graph.View
module Check = Mis_graph.Check

exception Invalid of string

let is_independent = Check.is_independent_set
let is_maximal view set = Check.is_maximal_independent view set
let is_mis = is_maximal

let verify ~name view set =
  if not (is_independent view set) then
    raise (Invalid (name ^ ": independence violated"));
  if not (is_maximal view set) then raise (Invalid (name ^ ": not maximal"))

let violations view set =
  let acc = ref [] in
  View.iter_active view (fun u ->
      if set.(u) then
        View.iter_adj view u (fun v -> if v > u && set.(v) then acc := (u, v) :: !acc));
  !acc

let remove_violations view set =
  let out = Array.copy set in
  View.iter_active view (fun u ->
      if set.(u) && View.exists_adj view u (fun v -> set.(v)) then out.(u) <- false);
  out

let uncovered view set =
  let n = View.n view in
  let out = Array.make n false in
  View.iter_active view (fun u ->
      if (not set.(u)) && not (View.exists_adj view u (fun v -> set.(v))) then
        out.(u) <- true);
  out
