type t = { words : int array; n : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let assign t i b = if b then set t i else clear t i

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  for i = 0 to t.n - 1 do set t i done

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.n - 1 do
    if get t i then f i
  done

let copy t = { words = Array.copy t.words; n = t.n }
