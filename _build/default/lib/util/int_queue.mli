(** Allocation-free FIFO queue of ints, backed by a growable ring buffer.

    The BFS and frontier-propagation hot loops use this instead of the
    boxed [Stdlib.Queue]. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val length : t -> int
val push : t -> int -> unit
val pop : t -> int
(** @raise Invalid_argument if the queue is empty. *)

val clear : t -> unit
