(** Unique node identifier assignment.

    The model (paper Sec. III) assumes unique IDs. Most of the randomized
    algorithms are ID-oblivious, so the default assignment is the node
    index; the deterministic-algorithm fairness experiment (paper Sec. II
    remark) draws IDs uniformly from a polynomial range instead. *)

val identity : int -> int array
(** [identity n] assigns id [i] to node [i]. *)

val random_distinct : Splitmix.t -> n:int -> int array
(** [random_distinct rng ~n] draws [n] distinct ids uniformly from
    [0 .. n^3)] (rejection on collisions), modelling the random-ID
    preprocessing step. *)

val random_permutation : Splitmix.t -> n:int -> int array
(** A uniformly random permutation of [0 .. n-1] (Fisher–Yates). *)
