(** Binary min-heap of integer items keyed by float priorities.

    Used by Prim's algorithm and the geometric workload generators. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val length : t -> int
val push : t -> priority:float -> int -> unit
val pop_min : t -> float * int
(** Remove and return the (priority, item) pair with the smallest priority.
    @raise Invalid_argument if the heap is empty. *)

val peek_min : t -> float * int
(** @raise Invalid_argument if the heap is empty. *)
