type t = {
  mutable buf : int array;
  mutable head : int;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { buf = Array.make capacity 0; head = 0; len = 0 }

let is_empty t = t.len = 0
let length t = t.len

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) 0 in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Int_queue.pop: empty";
  let x = t.buf.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  x

let clear t =
  t.head <- 0;
  t.len <- 0
