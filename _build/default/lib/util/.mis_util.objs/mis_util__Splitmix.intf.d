lib/util/splitmix.mli:
