lib/util/heap.mli:
