lib/util/ids.mli: Splitmix
