lib/util/dsu.mli:
