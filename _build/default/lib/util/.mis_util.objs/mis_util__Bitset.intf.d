lib/util/bitset.mli:
