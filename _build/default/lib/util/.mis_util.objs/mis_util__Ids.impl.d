lib/util/ids.ml: Array Hashtbl Splitmix
