lib/util/splitmix.ml: Float Int64 List
