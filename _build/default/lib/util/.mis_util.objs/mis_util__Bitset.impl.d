lib/util/bitset.ml: Array Sys
