lib/util/int_queue.ml: Array
