type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let of_seed s = { state = mix64 (Int64.of_int s) }
let of_key k = { state = k }
let copy t = { state = t.state }

let next_int64 t =
  let s = Int64.add t.state golden in
  t.state <- s;
  mix64 s

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling on 62 uniform bits. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  Float.of_int bits53 *. 0x1p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L

let geometric_truncated t ~p ~gamma =
  if not (p > 0. && p < 1.) then invalid_arg "Splitmix.geometric_truncated: p";
  if gamma < 0 then invalid_arg "Splitmix.geometric_truncated: gamma";
  let rec loop k = if k >= gamma || float t >= p then k else loop (k + 1) in
  loop 0

let derive seed keys =
  let step h k =
    mix64 (Int64.logxor (Int64.mul h 0xFF51AFD7ED558CCDL) (Int64.of_int (k + 0x5851F42D))) in
  List.fold_left step (mix64 seed) keys

let stream seed keys = of_key (derive seed keys)
