(** Compact fixed-size bitsets over [0 .. n-1], packed into native ints.

    Used as visited/active masks in the traversal and simulation hot loops,
    where a [bool array] would waste 8x the cache footprint. *)

type t

val create : int -> t
(** All bits initially clear. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit
val reset : t -> unit
(** Clear every bit. *)

val fill : t -> unit
(** Set every bit. *)

val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
(** Iterate over the indices of set bits, in increasing order. *)

val copy : t -> t
