(** Disjoint-set union (union–find) with union by rank and path compression.

    Used for Kruskal's MST, connected-component bookkeeping, and the fast
    engines of the partition-based MIS algorithms. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [false] if they were already
    the same set. *)

val same : t -> int -> int -> bool
(** Whether two elements are in the same set. *)

val count : t -> int
(** Number of distinct sets. *)

val size : t -> int -> int
(** Size of the set containing the element. *)
