type t = {
  mutable prio : float array;
  mutable item : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0.; item = Array.make capacity 0; len = 0 }

let is_empty t = t.len = 0
let length t = t.len

let grow t =
  let cap = Array.length t.prio in
  let prio = Array.make (2 * cap) 0. and item = Array.make (2 * cap) 0 in
  Array.blit t.prio 0 prio 0 t.len;
  Array.blit t.item 0 item 0 t.len;
  t.prio <- prio;
  t.item <- item

let swap t i j =
  let p = t.prio.(i) and x = t.item.(i) in
  t.prio.(i) <- t.prio.(j);
  t.item.(i) <- t.item.(j);
  t.prio.(j) <- p;
  t.item.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.len && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority x =
  if t.len = Array.length t.prio then grow t;
  t.prio.(t.len) <- priority;
  t.item.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_min t =
  if t.len = 0 then invalid_arg "Heap.peek_min: empty";
  (t.prio.(0), t.item.(0))

let pop_min t =
  let res = peek_min t in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.prio.(0) <- t.prio.(t.len);
    t.item.(0) <- t.item.(t.len);
    sift_down t 0
  end;
  res
