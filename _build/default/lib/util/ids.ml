let identity n = Array.init n (fun i -> i)

let random_distinct rng ~n =
  let range = max 8 (n * n * n) in
  let seen = Hashtbl.create (2 * n) in
  Array.init n (fun _ ->
      let rec draw () =
        let v = Splitmix.int rng range in
        if Hashtbl.mem seen v then draw ()
        else begin
          Hashtbl.add seen v ();
          v
        end
      in
      draw ())

let random_permutation rng ~n =
  let a = identity n in
  for i = n - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
