(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Every source of randomness in this repository flows through this module
    so that a single integer seed reproduces a whole experiment, and so that
    the distributed and fast engines of each algorithm can draw identical
    coins from identical keyed streams. *)

type t
(** A mutable pseudo-random stream. *)

val of_seed : int -> t
(** [of_seed s] creates a stream from an integer seed. *)

val of_key : int64 -> t
(** [of_key k] creates a stream whose state is exactly [k] (already mixed). *)

val copy : t -> t
(** [copy t] is an independent stream starting at [t]'s current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the generator. *)

val bits62 : t -> int
(** Next 62 uniformly random non-negative bits as an OCaml [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so there is no modulo bias. *)

val float : t -> float
(** Uniform in [\[0, 1)], with 53 bits of precision. *)

val bool : t -> bool
(** A fair coin. *)

val geometric_truncated : t -> p:float -> gamma:int -> int
(** [geometric_truncated t ~p ~gamma] samples from the Linial–Saks radius
    distribution: [P(k) = p^k (1-p)] for [0 <= k < gamma] and
    [P(gamma) = p^gamma]. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer, exposed for keyed derivation. *)

val derive : int64 -> int list -> int64
(** [derive seed keys] deterministically hashes [seed] together with the
    integer key path [keys] into a fresh stream state. Distinct key paths
    yield statistically independent streams. *)

val stream : int64 -> int list -> t
(** [stream seed keys] is [of_key (derive seed keys)]. *)
