module Graph = Mis_graph.Graph
module Splitmix = Mis_util.Splitmix

let even_cycle n =
  if n < 4 || n mod 2 <> 0 then invalid_arg "Bipartite.even_cycle";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete_bipartite ~left ~right =
  if left < 1 || right < 1 then invalid_arg "Bipartite.complete_bipartite";
  let edges = ref [] in
  for i = 0 to left - 1 do
    for j = 0 to right - 1 do
      edges := (i, left + j) :: !edges
    done
  done;
  Graph.of_edges ~n:(left + right) !edges

let grid ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Bipartite.grid";
  let id r c = (r * width) + c in
  let edges = ref [] in
  for r = 0 to height - 1 do
    for c = 0 to width - 1 do
      if c + 1 < width then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < height then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(width * height) !edges

let hypercube ~dim =
  if dim < 0 || dim > 20 then invalid_arg "Bipartite.hypercube";
  let n = 1 lsl dim in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let v = u lxor (1 lsl b) in
      if v > u then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let double_star ~left_leaves ~right_leaves =
  if left_leaves < 0 || right_leaves < 0 then invalid_arg "Bipartite.double_star";
  let n = 2 + left_leaves + right_leaves in
  let edges = ref [ (0, 1) ] in
  for i = 0 to left_leaves - 1 do
    edges := (0, 2 + i) :: !edges
  done;
  for i = 0 to right_leaves - 1 do
    edges := (1, 2 + left_leaves + i) :: !edges
  done;
  Graph.of_edges ~n !edges

let random_connected rng ~left ~right ~p =
  if left < 1 || right < 1 then invalid_arg "Bipartite.random_connected";
  if not (p >= 0. && p <= 1.) then invalid_arg "Bipartite.random_connected: p";
  let n = left + right in
  let present = Hashtbl.create 64 in
  let edges = ref [] in
  let add i j =
    if not (Hashtbl.mem present (i, j)) then begin
      Hashtbl.add present (i, j) ();
      edges := (i, j) :: !edges
    end
  in
  for i = 0 to left - 1 do
    for j = left to n - 1 do
      if Splitmix.float rng < p then add i j
    done
  done;
  (* Stitch components together with random cross edges. *)
  let dsu = Mis_util.Dsu.create n in
  List.iter (fun (i, j) -> ignore (Mis_util.Dsu.union dsu i j : bool)) !edges;
  while Mis_util.Dsu.count dsu > 1 do
    let i = Splitmix.int rng left and j = left + Splitmix.int rng right in
    if Mis_util.Dsu.union dsu i j then add i j
  done;
  Graph.of_edges ~n !edges
