(** Tree topologies used throughout the paper's evaluation (Sec. IX):
    complete k-ary trees, the "alternating" trees that isolate local degree
    variation, and assorted synthetic families for wider testing. Nodes are
    numbered in BFS order from the root (node 0). *)

val complete_kary : branch:int -> depth:int -> Mis_graph.Graph.t
(** Complete [branch]-ary tree with levels [0 .. depth].
    [branch=2, depth=10] gives the paper's 2047-node binary tree;
    [branch=5, depth=5] the 3906-node 5-ary tree. *)

val alternating : branch:int -> depth:int -> Mis_graph.Graph.t
(** Paper's alternating tree: internal nodes at even depth have [branch]
    children, internal nodes at odd depth have exactly one child.
    [branch=10, depth=5] → 1221 nodes; [branch=30, depth=3] → 961 nodes. *)

val path : int -> Mis_graph.Graph.t
val star : int -> Mis_graph.Graph.t
(** [star n] has [n] nodes: hub 0 and [n-1] leaves (Sec. I example). *)

val spider : legs:int -> leg_length:int -> Mis_graph.Graph.t
(** [legs] paths of [leg_length] nodes glued to a hub. *)

val caterpillar : spine:int -> legs_per_node:int -> Mis_graph.Graph.t

val random_prufer : Mis_util.Splitmix.t -> n:int -> Mis_graph.Graph.t
(** Uniformly random labeled tree (Prüfer decoding). [n >= 1]. *)

val random_attachment : Mis_util.Splitmix.t -> n:int -> Mis_graph.Graph.t
(** Each node [i >= 1] attaches to a uniformly random earlier node. *)

val preferential_attachment : Mis_util.Splitmix.t -> n:int -> Mis_graph.Graph.t
(** Each node attaches to an earlier node chosen proportionally to degree,
    producing hub-heavy trees (high Luby unfairness). *)
