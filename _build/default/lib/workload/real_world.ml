module Splitmix = Mis_util.Splitmix
module Graph = Mis_graph.Graph
module View = Mis_graph.View
module Traverse = Mis_graph.Traverse

(* Prune random leaves of a tree (given as an edge list over [alive] nodes)
   until exactly [target] nodes remain; returns the relabelled tree. *)
let prune_to_target rng ~n ~edges ~members ~target =
  let alive = Array.make n false in
  Array.iter (fun u -> alive.(u) <- true) members;
  let adjacency = Array.make n [] in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if alive.(u) && alive.(v) then begin
        adjacency.(u) <- v :: adjacency.(u);
        adjacency.(v) <- u :: adjacency.(v);
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let count = ref (Array.length members) in
  let leaves = ref [] in
  Array.iter (fun u -> if deg.(u) <= 1 then leaves := u :: !leaves) members;
  let leaf_pool = ref (Array.of_list !leaves) in
  let pool_len = ref (Array.length !leaf_pool) in
  let fresh = ref [] in
  while !count > target do
    if !pool_len = 0 then begin
      leaf_pool := Array.of_list !fresh;
      pool_len := Array.length !leaf_pool;
      fresh := [];
      if !pool_len = 0 then failwith "Real_world.prune: no leaves left"
    end
    else begin
      let i = Splitmix.int rng !pool_len in
      let u = !leaf_pool.(i) in
      !leaf_pool.(i) <- !leaf_pool.(!pool_len - 1);
      decr pool_len;
      if alive.(u) && deg.(u) <= 1 then begin
        alive.(u) <- false;
        decr count;
        List.iter
          (fun v ->
            if alive.(v) then begin
              deg.(v) <- deg.(v) - 1;
              if deg.(v) = 1 then fresh := v :: !fresh
            end)
          adjacency.(u)
      end
    end
  done;
  let label = Array.make n (-1) in
  let next = ref 0 in
  for u = 0 to n - 1 do
    if alive.(u) then begin
      label.(u) <- !next;
      incr next
    end
  done;
  let kept =
    List.filter_map
      (fun (u, v) ->
        if alive.(u) && alive.(v) then Some (label.(u), label.(v)) else None)
      edges
  in
  Graph.of_edges ~n:target kept

(* Size of the largest component of the MST forest at the given radius,
   together with the forest edges and the component's members. *)
let forest_at points ~radius =
  let n = Array.length points in
  let weighted = Mis_graph.Geometry.threshold_edges points ~radius in
  let mst_edges = Mis_graph.Mst.prim ~n weighted in
  let forest = Graph.of_edges ~n mst_edges in
  let label, comp_count = Traverse.components (View.full forest) in
  let members = Traverse.component_members label comp_count in
  let largest =
    Array.fold_left
      (fun best nodes ->
        if Array.length nodes > Array.length best then nodes else best)
      [||] members
  in
  (Array.length largest, mst_edges, largest)

let tree_of_points rng points ~radius ~target =
  let n = Array.length points in
  if target < 1 || target > n then invalid_arg "Real_world.tree_of_points";
  (* Grow the radius until the largest component reaches the target, then
     binary-search the smallest sufficient radius so that leaf-pruning to
     the exact size removes as little structure as possible. *)
  let rec grow radius tries =
    if tries > 60 then failwith "Real_world.tree_of_points: cannot connect";
    let size, _, _ = forest_at points ~radius in
    if size >= target then radius else grow (radius *. 1.3) (tries + 1)
  in
  let hi = grow radius 0 in
  let lo = ref (hi /. 1.3) and hi = ref hi in
  for _ = 1 to 10 do
    let mid = (!lo +. !hi) /. 2. in
    let size, _, _ = forest_at points ~radius:mid in
    if size >= target then hi := mid else lo := mid
  done;
  let _, mst_edges, members = forest_at points ~radius:!hi in
  prune_to_target rng ~n ~edges:mst_edges ~members ~target

let dartmouth_like ~seed =
  let rng = Splitmix.stream (Int64.of_int seed) [ 101 ] in
  let points = Geo.sample rng Geo.campus ~n:700 in
  tree_of_points rng points ~radius:20. ~target:178

let nyc_like ~seed =
  let rng = Splitmix.stream (Int64.of_int seed) [ 102 ] in
  let points = Geo.sample rng Geo.city ~n:19000 in
  tree_of_points rng points ~radius:60. ~target:17834

let nyc_like_small ~seed =
  let rng = Splitmix.stream (Int64.of_int seed) [ 103 ] in
  let points = Geo.sample rng Geo.city ~n:2300 in
  tree_of_points rng points ~radius:120. ~target:2048
