module Splitmix = Mis_util.Splitmix
module Geometry = Mis_graph.Geometry

type params = {
  clusters : int;
  mean_sites_per_cluster : float;
  sigma : float;
  background : float;
  site_mean : float;
  site_big_prob : float;
  site_big_mean : float;
  snap : float;
  width : float;
  height : float;
}

let campus =
  { clusters = 18; mean_sites_per_cluster = 14.; sigma = 14.; background = 0.08;
    site_mean = 1.2; site_big_prob = 0.03; site_big_mean = 18.; snap = 1.;
    width = 1000.; height = 700. }

let city =
  { clusters = 400; mean_sites_per_cluster = 18.; sigma = 45.; background = 0.10;
    site_mean = 1.0; site_big_prob = 0.013; site_big_mean = 100.; snap = 2.;
    width = 12000.; height = 9000. }

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Geo.poisson";
  let l = exp (-.mean) in
  let rec loop k p =
    let p = p *. Splitmix.float rng in
    if p <= l then k else loop (k + 1) p
  in
  loop 0 1.

let gaussian rng =
  let u1 = 1. -. Splitmix.float rng (* in (0, 1] *) in
  let u2 = Splitmix.float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let sample rng params ~n =
  if n < 0 then invalid_arg "Geo.sample";
  let clamp v hi = Float.max 0. (Float.min hi v) in
  let quantize v =
    if params.snap <= 0. then v
    else Float.round (v /. params.snap) *. params.snap
  in
  let finish (p : Geometry.point) =
    { Geometry.x = quantize (clamp p.Geometry.x params.width);
      y = quantize (clamp p.Geometry.y params.height) }
  in
  let uniform_point () =
    { Geometry.x = Splitmix.float rng *. params.width;
      y = Splitmix.float rng *. params.height }
  in
  let acc = ref [] and count = ref 0 in
  (* Emit all APs of one site: co-located after snapping. *)
  let push_site raw =
    let site = finish raw in
    let extra = poisson rng ~mean:params.site_mean in
    let extra =
      if Splitmix.float rng < params.site_big_prob then
        extra + poisson rng ~mean:params.site_big_mean
      else extra
    in
    let aps = 1 + extra in
    let budget = min aps (n - !count) in
    for _ = 1 to budget do
      acc := site :: !acc;
      incr count
    done
  in
  let background_sites =
    int_of_float (params.background *. float_of_int n) in
  let i = ref 0 in
  while !count < n && !i < background_sites do
    push_site (uniform_point ());
    incr i
  done;
  let parents = Array.init (max params.clusters 1) (fun _ -> uniform_point ()) in
  let next_parent = ref 0 in
  while !count < n do
    let parent = parents.(!next_parent mod Array.length parents) in
    incr next_parent;
    let sites = 1 + poisson rng ~mean:params.mean_sites_per_cluster in
    let s = ref 0 in
    while !count < n && !s < sites do
      push_site
        { Geometry.x = parent.Geometry.x +. (params.sigma *. gaussian rng);
          y = parent.Geometry.y +. (params.sigma *. gaussian rng) };
      incr s
    done
  done;
  Array.of_list !acc
