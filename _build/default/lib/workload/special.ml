module Graph = Mis_graph.Graph

let clique n =
  if n < 1 then invalid_arg "Special.clique";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let cone ~k =
  if k < 1 then invalid_arg "Special.cone";
  let n = (2 * k) + 1 in
  let edges = ref [] in
  (* Clique on nodes 1 .. 2k. *)
  for i = 1 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  (* Apex 0 adjacent to 1 .. k. *)
  for i = 1 to k do
    edges := (0, i) :: !edges
  done;
  Graph.of_edges ~n !edges

let cone_apex = 0

let cone_far_side ~k = Array.init k (fun i -> k + 1 + i)
