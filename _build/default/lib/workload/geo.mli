(** Synthetic geographic point processes standing in for the paper's
    wireless-access-point location traces (Dartmouth CRAWDAD and NYC
    Wigle.NET — see DESIGN.md "Substitutions").

    Two features of wardriving datasets matter for the derived trees:

    - {b clustering}: APs concentrate in buildings/blocks (Matérn-style
      cluster process: uniform parents, Poisson cluster sizes, Gaussian
      offspring);
    - {b co-location}: one site (building, rooftop) hosts many APs whose
      recorded coordinates coincide after GPS rounding. Co-located points
      become zero-length threshold edges, and the minimum spanning tree
      connects them through high-degree hubs — exactly the degree profile
      that makes Luby's algorithm unfair on the paper's real-world trees. *)

type params = {
  clusters : int;  (** Number of cluster parents. *)
  mean_sites_per_cluster : float;  (** Poisson mean of sites per cluster. *)
  sigma : float;  (** Gaussian spread of sites around the parent. *)
  background : float;  (** Fraction of sites placed uniformly at random. *)
  site_mean : float;  (** Poisson mean of extra APs per site (>= 0). *)
  site_big_prob : float;  (** Probability that a site is a large facility. *)
  site_big_mean : float;  (** Poisson mean of extra APs at a large site. *)
  snap : float;  (** Coordinate grid quantum (GPS rounding); 0 = off. *)
  width : float;
  height : float;
}

val campus : params
(** Dartmouth-like: a handful of dense building clusters, moderate
    multi-AP sites. *)

val city : params
(** NYC-like: many clusters over a large extent, background noise, and
    occasional very large sites (office towers). *)

val sample : Mis_util.Splitmix.t -> params -> n:int -> Mis_graph.Geometry.point array
(** Exactly [n] AP positions. *)

val poisson : Mis_util.Splitmix.t -> mean:float -> int
(** Knuth's Poisson sampler (exposed for tests). *)

val gaussian : Mis_util.Splitmix.t -> float
(** Standard normal via Box–Muller (exposed for tests). *)
