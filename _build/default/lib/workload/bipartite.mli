(** Bipartite topologies for the FairBipart experiments (paper Sec. VI). *)

val even_cycle : int -> Mis_graph.Graph.t
(** Cycle on [n] nodes; [n] must be even and [>= 4]. *)

val complete_bipartite : left:int -> right:int -> Mis_graph.Graph.t
(** K_{left,right}: left side is nodes [0 .. left-1]. *)

val grid : width:int -> height:int -> Mis_graph.Graph.t
(** 4-connected grid (bipartite and planar). Node [(r, c)] is
    [r * width + c]. *)

val hypercube : dim:int -> Mis_graph.Graph.t
(** [2^dim] nodes, edges between words at Hamming distance 1. *)

val double_star : left_leaves:int -> right_leaves:int -> Mis_graph.Graph.t
(** Two adjacent hubs (nodes 0 and 1) with pendant leaves — a tree with
    sharply asymmetric degrees. *)

val random_connected :
  Mis_util.Splitmix.t -> left:int -> right:int -> p:float -> Mis_graph.Graph.t
(** Random bipartite graph: each left-right pair is an edge with
    probability [p]; extra uniformly random cross edges are then added to
    merge components, so the result is connected (and still bipartite). *)
