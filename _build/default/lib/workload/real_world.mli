(** Real-world-style trees: the paper's Sec. IX pipeline applied to the
    synthetic WAP point clouds of {!Geo}.

    Pipeline (verbatim from the paper): impose a maximum physical distance
    that may be represented by an edge, form the threshold graph, and take
    a minimum spanning tree. We then restrict to the largest component and
    prune random leaves down to the paper's exact node counts. *)

val tree_of_points :
  Mis_util.Splitmix.t ->
  Mis_graph.Geometry.point array ->
  radius:float ->
  target:int ->
  Mis_graph.Graph.t
(** MST tree of the largest threshold-graph component, leaf-pruned to
    exactly [target] nodes. The radius is grown geometrically (factor 1.3)
    until the largest component reaches [target] nodes, mirroring the
    paper's choice of "a maximum physical distance" that keeps the network
    connected. *)

val dartmouth_like : seed:int -> Mis_graph.Graph.t
(** 178-node tree (paper's Dartmouth trace size) from a campus-like cloud
    of 700 points. *)

val nyc_like : seed:int -> Mis_graph.Graph.t
(** 17,834-node tree (paper's NYC trace size) from a city-like cloud. *)

val nyc_like_small : seed:int -> Mis_graph.Graph.t
(** 2,048-node variant of the city tree for quick benchmarking runs. *)
