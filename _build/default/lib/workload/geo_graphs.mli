(** Geometric graphs (not just trees) built from point clouds: unit-disk
    graphs, the classic wireless connectivity model. Used by the
    mixed-density "regions" experiment for the paper's Sec. VII remark that
    ColorMIS yields good inequality in regions of the network that can be
    colored with few colors. *)

val unit_disk : Mis_graph.Geometry.point array -> radius:float -> Mis_graph.Graph.t
(** Edge between every pair of points at distance <= radius. *)

type mixed = {
  graph : Mis_graph.Graph.t;
  dense : bool array;  (** Membership in the dense blob. *)
}

val mixed_density :
  Mis_util.Splitmix.t ->
  sparse:int ->
  dense:int ->
  radius:float ->
  mixed
(** A unit-disk graph over [sparse] points spread widely (pairwise mostly
    beyond [radius]) plus [dense] points packed into one blob of diameter
    ~[radius]. The sparse region has small degree (easy to color); the
    dense blob is nearly a clique. A random sparse-region point is placed
    near the blob so the graph is connected. *)
