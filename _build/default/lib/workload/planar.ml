module Graph = Mis_graph.Graph
module Splitmix = Mis_util.Splitmix

let cycle n =
  if n < 3 then invalid_arg "Planar.cycle";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let wheel n =
  if n < 4 then invalid_arg "Planar.wheel";
  let rim = n - 1 in
  let edges =
    List.init rim (fun i -> (1 + i, 1 + ((i + 1) mod rim)))
    @ List.init rim (fun i -> (0, 1 + i))
  in
  Graph.of_edges ~n edges

let triangular_grid ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Planar.triangular_grid";
  let id r c = (r * width) + c in
  let edges = ref [] in
  for r = 0 to height - 1 do
    for c = 0 to width - 1 do
      if c + 1 < width then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < height then edges := (id r c, id (r + 1) c) :: !edges;
      if c + 1 < width && r + 1 < height then
        edges := (id r c, id (r + 1) (c + 1)) :: !edges
    done
  done;
  Graph.of_edges ~n:(width * height) !edges

let fan_triangulation n =
  if n < 2 then invalid_arg "Planar.fan_triangulation";
  let edges =
    List.init (n - 1) (fun i -> (0, 1 + i))
    @ List.init (n - 2) (fun i -> (1 + i, 2 + i))
  in
  Graph.of_edges ~n edges

let random_outerplanar rng ~n =
  if n < 3 then invalid_arg "Planar.random_outerplanar";
  let edges = ref (List.init n (fun i -> (i, (i + 1) mod n))) in
  (* Recursively add a chord splitting the region [lo..hi] (indices along
     the outer cycle), with a coin deciding whether to keep splitting. *)
  let rec split lo hi =
    if hi - lo >= 3 && Splitmix.bool rng then begin
      let mid = lo + 1 + Splitmix.int rng (hi - lo - 1) in
      if mid - lo >= 2 then edges := (lo, mid) :: !edges;
      split lo mid;
      split mid hi
    end
  in
  split 0 (n - 1);
  Graph.of_edges ~n !edges
