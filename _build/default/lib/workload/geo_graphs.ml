module Geometry = Mis_graph.Geometry
module Splitmix = Mis_util.Splitmix

let unit_disk points ~radius =
  let n = Array.length points in
  let weighted = Geometry.threshold_edges points ~radius in
  Mis_graph.Graph.of_edges ~n
    (Array.to_list (Array.map (fun (_, u, v) -> (u, v)) weighted))

type mixed = {
  graph : Mis_graph.Graph.t;
  dense : bool array;
}

let mixed_density rng ~sparse ~dense ~radius =
  if sparse < 1 || dense < 1 then invalid_arg "Geo_graphs.mixed_density";
  let n = sparse + dense in
  let points = Array.make n { Geometry.x = 0.; y = 0. } in
  (* Sparse region: a jittered grid with spacing 0.85 radius — orthogonal
     grid neighbors connect (degree ~4), diagonals usually do not. *)
  let cols = int_of_float (ceil (sqrt (float_of_int sparse))) in
  let spacing = 0.85 *. radius in
  for i = 0 to sparse - 1 do
    let r = i / cols and c = i mod cols in
    points.(i) <-
      { Geometry.x = (float_of_int c +. (0.1 *. Splitmix.float rng)) *. spacing;
        y = (float_of_int r +. (0.1 *. Splitmix.float rng)) *. spacing }
  done;
  (* Dense blob centered on the first sparse point, radius/3 across. *)
  let center = points.(0) in
  for j = 0 to dense - 1 do
    let angle = 2. *. Float.pi *. Splitmix.float rng in
    let dist = radius /. 3. *. Splitmix.float rng in
    points.(sparse + j) <-
      { Geometry.x = center.Geometry.x +. (dist *. cos angle);
        y = center.Geometry.y +. (dist *. sin angle) }
  done;
  let graph = unit_disk points ~radius in
  let dense_mask = Array.init n (fun i -> i >= sparse) in
  { graph; dense = dense_mask }
