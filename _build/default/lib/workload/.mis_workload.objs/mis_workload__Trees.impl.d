lib/workload/trees.ml: Array List Mis_graph Mis_util
