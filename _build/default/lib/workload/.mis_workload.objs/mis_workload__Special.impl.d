lib/workload/special.ml: Array Mis_graph
