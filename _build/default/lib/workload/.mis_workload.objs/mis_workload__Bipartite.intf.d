lib/workload/bipartite.mli: Mis_graph Mis_util
