lib/workload/geo.mli: Mis_graph Mis_util
