lib/workload/geo_graphs.ml: Array Float Mis_graph Mis_util
