lib/workload/special.mli: Mis_graph
