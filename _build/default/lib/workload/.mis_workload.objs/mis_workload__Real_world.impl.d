lib/workload/real_world.ml: Array Geo Int64 List Mis_graph Mis_util
