lib/workload/real_world.mli: Mis_graph Mis_util
