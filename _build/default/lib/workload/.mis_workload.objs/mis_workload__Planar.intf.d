lib/workload/planar.mli: Mis_graph Mis_util
