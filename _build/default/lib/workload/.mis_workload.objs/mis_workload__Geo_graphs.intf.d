lib/workload/geo_graphs.mli: Mis_graph Mis_util
