lib/workload/bipartite.ml: Hashtbl List Mis_graph Mis_util
