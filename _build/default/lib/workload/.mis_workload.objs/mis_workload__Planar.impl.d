lib/workload/planar.ml: List Mis_graph Mis_util
