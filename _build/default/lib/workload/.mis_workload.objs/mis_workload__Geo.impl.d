lib/workload/geo.ml: Array Float Mis_graph Mis_util
