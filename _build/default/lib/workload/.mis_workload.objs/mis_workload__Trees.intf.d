lib/workload/trees.mli: Mis_graph Mis_util
