(** Planar topologies for the ColorMIS experiments (paper Sec. VII,
    Corollary 18: planar graphs have arboricity <= 3, hence a fair MIS in
    O(log^2 n) rounds). *)

val cycle : int -> Mis_graph.Graph.t
(** Cycle on [n >= 3] nodes. *)

val wheel : int -> Mis_graph.Graph.t
(** [wheel n]: hub 0 joined to an [(n-1)]-cycle; [n >= 4]. *)

val triangular_grid : width:int -> height:int -> Mis_graph.Graph.t
(** Grid plus one diagonal per cell: planar, triangle-rich (not bipartite
    when [width, height >= 2]). *)

val fan_triangulation : int -> Mis_graph.Graph.t
(** Maximal outerplanar graph: a path [1 .. n-1] fanned from apex 0. *)

val random_outerplanar : Mis_util.Splitmix.t -> n:int -> Mis_graph.Graph.t
(** Cycle plus random non-crossing chords (uniform recursive splitting):
    outerplanar, arboricity <= 2. [n >= 3]. *)
