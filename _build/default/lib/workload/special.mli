(** Special-purpose graphs from the paper's theory sections. *)

val clique : int -> Mis_graph.Graph.t

val cone : k:int -> Mis_graph.Graph.t
(** The lower-bound graph of Sec. VIII: nodes [u_0 .. u_2k] where
    [u_1 .. u_2k] form a clique and [u_0] is adjacent to [u_1 .. u_k].
    Every MIS algorithm has inequality factor Ω(n) on it (Theorem 19).
    Node 0 is [u_0]. Requires [k >= 1]. *)

val cone_apex : int
(** Index of [u_0] in {!cone} (always 0). *)

val cone_far_side : k:int -> int array
(** Indices of [S = {u_{k+1} .. u_2k}], the clique nodes not adjacent to
    the apex. *)
