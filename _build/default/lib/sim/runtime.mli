(** Synchronous executor: the paper's discrete network simulator.

    Runs one {!Program} instance per active node of a graph {!Mis_graph.View},
    delivering each round's messages at the start of the next round, and
    accounting rounds, message volume, and (optionally) the largest message
    size so the [O(log n)]-bit CONGEST discipline of the model can be
    asserted in tests. *)

type outcome = {
  output : bool array;
      (** Per node index; meaningful only for nodes active in the view
          that reached a decision. *)
  decided : bool array;  (** Whether the node produced an [Output]. *)
  rounds : int;  (** Communication rounds executed. *)
  messages : int;  (** Total point-to-point messages delivered. *)
  max_message_bits : int;  (** 0 unless [size_bits] was provided. *)
}

val run :
  ?max_rounds:int ->
  ?size_bits:('m -> int) ->
  ?ids:int array ->
  rng_of:(int -> Mis_util.Splitmix.t) ->
  Mis_graph.View.t ->
  ('s, 'm) Program.t ->
  outcome
(** [run ~rng_of view program] executes [program] on every active node.

    [ids] maps node index to the unique identifier exposed to programs
    (default: the index itself). [rng_of index] supplies each node's
    private random stream. Execution stops when every active node has
    decided, or after [max_rounds] (default [64 + 64 * ceil(log2 n)])
    rounds, whichever comes first.

    @raise Invalid_argument if [ids] contains duplicates among active
    nodes, or if a program sends to an id that is not its neighbor. *)
