module View = Mis_graph.View

type outcome = {
  output : bool array;
  decided : bool array;
  rounds : int;
  messages : int;
  max_message_bits : int;
}

let ceil_log2 n =
  let rec loop k acc = if acc >= n then k else loop (k + 1) (2 * acc) in
  loop 0 1

let run ?max_rounds ?size_bits ?ids ~rng_of view (program : ('s, 'm) Program.t) =
  let n = View.n view in
  let ids = match ids with Some a -> a | None -> Array.init n (fun i -> i) in
  if Array.length ids <> n then invalid_arg "Runtime.run: ids length";
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> 64 + (64 * ceil_log2 (max n 2))
  in
  let active = View.active_nodes view in
  let index_of_id = Hashtbl.create (2 * Array.length active) in
  Array.iter
    (fun u ->
      if Hashtbl.mem index_of_id ids.(u) then
        invalid_arg "Runtime.run: duplicate ids";
      Hashtbl.add index_of_id ids.(u) u)
    active;
  let neighbor_indices =
    Array.map
      (fun u ->
        let acc = ref [] in
        View.iter_adj view u (fun v -> acc := v :: !acc);
        Array.of_list (List.rev !acc))
      active
  in
  (* slot.(u) = position of node u in [active], or -1. *)
  let slot = Array.make n (-1) in
  Array.iteri (fun s u -> slot.(u) <- s) active;
  let ctx =
    Array.mapi
      (fun s u ->
        { Node_ctx.index = u;
          id = ids.(u);
          n;
          neighbor_ids = Array.map (fun v -> ids.(v)) neighbor_indices.(s);
          rng = rng_of u })
      active
  in
  let output = Array.make n false in
  let decided = Array.make n false in
  let states : 's option array = Array.make (Array.length active) None in
  let inbox : (int * 'm) list array = Array.make (Array.length active) [] in
  let next_inbox : (int * 'm) list array = Array.make (Array.length active) [] in
  let messages = ref 0 in
  let max_bits = ref 0 in
  let record_size m =
    match size_bits with
    | None -> ()
    | Some f ->
      let b = f m in
      if b > !max_bits then max_bits := b
  in
  let deliver_to ~sender_id v m =
    let s = slot.(v) in
    if s >= 0 && not decided.(v) then begin
      next_inbox.(s) <- (sender_id, m) :: next_inbox.(s);
      incr messages;
      record_size m
    end
  in
  let perform s actions =
    let u = active.(s) in
    let sender_id = ids.(u) in
    List.iter
      (fun action ->
        match action with
        | Program.Broadcast m ->
          Array.iter (fun v -> deliver_to ~sender_id v m) neighbor_indices.(s)
        | Program.Send (target_id, m) -> begin
          match Hashtbl.find_opt index_of_id target_id with
          | Some v when Array.exists (fun w -> w = v) neighbor_indices.(s) ->
            deliver_to ~sender_id v m
          | Some _ | None ->
            invalid_arg
              (Printf.sprintf "Runtime.run(%s): send to non-neighbor id %d"
                 program.Program.name target_id)
        end)
      actions
  in
  let undecided = ref (Array.length active) in
  Array.iteri
    (fun s _ ->
      let state, actions = program.Program.init ctx.(s) in
      states.(s) <- Some state;
      perform s actions)
    active;
  let rounds = ref 0 in
  while !undecided > 0 && !rounds < max_rounds do
    incr rounds;
    Array.iteri
      (fun s msgs ->
        inbox.(s) <- msgs;
        next_inbox.(s) <- [])
      next_inbox;
    Array.iteri
      (fun s u ->
        if not decided.(u) then begin
          match states.(s) with
          | None -> assert false
          | Some state ->
            let status, actions = program.Program.receive ctx.(s) state inbox.(s) in
            perform s actions;
            (match status with
            | Program.Continue state' -> states.(s) <- Some state'
            | Program.Output b ->
              output.(u) <- b;
              decided.(u) <- true;
              decr undecided)
        end)
      active
  done;
  { output; decided; rounds = !rounds; messages = !messages;
    max_message_bits = !max_bits }
