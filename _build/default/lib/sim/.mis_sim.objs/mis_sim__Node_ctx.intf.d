lib/sim/node_ctx.mli: Mis_util
