lib/sim/program.ml: Node_ctx
