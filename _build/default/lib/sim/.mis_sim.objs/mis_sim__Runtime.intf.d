lib/sim/runtime.mli: Mis_graph Mis_util Program
