lib/sim/node_ctx.ml: Array Mis_util
