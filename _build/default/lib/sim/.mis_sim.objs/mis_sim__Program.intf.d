lib/sim/program.mli: Node_ctx
