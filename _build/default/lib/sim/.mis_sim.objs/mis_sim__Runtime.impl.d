lib/sim/runtime.ml: Array Hashtbl List Mis_graph Node_ctx Printf Program
